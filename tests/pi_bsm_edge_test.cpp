// Edge cases of Pi_bSM: malformed B lists defaulting deterministically,
// control-channel constants, hostile suggestions, adaptive corruption of
// the opposite side, and the exact timing of the two decision rounds.
#include <gtest/gtest.h>

#include "adversary/strategies.hpp"
#include "core/pi_bsm.hpp"
#include "core/runner.hpp"
#include "matching/generators.hpp"

namespace bsm::core {
namespace {

using net::TopologyKind;

TEST(PiBsmEdge, ControlChannelsLiveOutsideInstanceIds) {
  EXPECT_EQ(pi_bsm_list_channel(4), 8U);
  EXPECT_EQ(pi_bsm_suggest_channel(4), 9U);
}

TEST(PiBsmEdge, GarbledBListFallsBackToTheSharedDefault) {
  // Byzantine R party 4 sprays garbage (its "list" never parses): every
  // honest A party must substitute the same default list, so the outcome
  // equals offline Gale-Shapley on the default-substituted profile.
  const std::uint32_t k = 4;
  RunSpec spec;
  spec.config = BsmConfig{TopologyKind::Bipartite, true, k, 1, k};
  spec.inputs = matching::random_profile(k, 6);
  spec.adversaries.push_back({4, 0, std::make_unique<adversary::RandomNoise>(8, 6, 64)});

  matching::PreferenceProfile substituted = spec.inputs;
  substituted.set(4, matching::default_preference_list(Side::Right, k));
  const auto expected = matching::gale_shapley(substituted).matching;

  const auto out = run_bsm(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
  for (PartyId id = 0; id < 2 * k; ++id) {
    if (out.corrupt[id]) continue;
    EXPECT_EQ(out.decisions[id], std::optional<PartyId>{expected[id]}) << "P" << id;
  }
}

TEST(PiBsmEdge, SilentBPartyGetsDefaultButStillGetsMatched) {
  // A silent byzantine R party is assigned the default list; the matching
  // is still perfect and the silent party's "slot" is filled consistently.
  const std::uint32_t k = 3;
  RunSpec spec;
  spec.config = BsmConfig{TopologyKind::Bipartite, true, k, 0, k};
  spec.inputs = matching::random_profile(k, 2);
  spec.adversaries.push_back({5, 0, std::make_unique<adversary::Silent>()});

  matching::PreferenceProfile substituted = spec.inputs;
  substituted.set(5, matching::default_preference_list(Side::Right, k));
  const auto expected = matching::gale_shapley(substituted).matching;

  const auto out = run_bsm(std::move(spec));
  EXPECT_TRUE(out.report.all());
  for (PartyId l = 0; l < k; ++l) {
    EXPECT_EQ(out.decisions[l], std::optional<PartyId>{expected[l]});
  }
}

TEST(PiBsmEdge, AdaptiveCorruptionOfBMidProtocol) {
  // R parties fall to the adversary one by one while the protocol runs;
  // the run stays within budget (tR = k) and properties must hold.
  const std::uint32_t k = 3;
  RunSpec spec;
  spec.config = BsmConfig{TopologyKind::Bipartite, true, k, 0, k};
  spec.inputs = matching::random_profile(k, 4);
  spec.adversaries.push_back({3, 2, std::make_unique<adversary::Silent>()});
  spec.adversaries.push_back({4, 4, std::make_unique<adversary::Silent>()});
  spec.adversaries.push_back({5, 6, std::make_unique<adversary::Silent>()});
  const auto out = run_bsm(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
}

TEST(PiBsmEdge, HostileSuggestionsWithWrongSideAreIgnored) {
  // A byzantine A party suggests a *right-side* id as a partner; B must
  // discard implausible suggestions entirely.
  const std::uint32_t k = 4;
  const BsmConfig cfg{TopologyKind::Bipartite, true, k, 1, k};
  const auto proto = *resolve_protocol(cfg);
  const auto inputs = matching::random_profile(k, 8);

  class NonsenseSuggester final : public net::Process {
   public:
    explicit NonsenseSuggester(std::uint32_t k) : k_(k) {}
    void on_round(net::Context& ctx, net::Inbox) override {
      if (ctx.round() != 0) return;
      for (PartyId b = k_; b < 2 * k_; ++b) {
        Writer inner;
        inner.u32(b);  // "match yourself" — wrong side
        Writer frame;
        frame.u32(pi_bsm_suggest_channel(k_));
        frame.bytes(inner.data());
        Writer direct;
        direct.u8(0);
        direct.bytes(frame.data());
        ctx.send(b, direct.data());
      }
    }
    std::uint32_t k_;
  };

  RunSpec spec;
  spec.config = cfg;
  spec.inputs = inputs;
  spec.adversaries.push_back({0, 0, std::make_unique<NonsenseSuggester>(k)});
  const auto out = run_bsm(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
  for (PartyId b = k; b < 2 * k; ++b) {
    ASSERT_TRUE(out.decisions[b].has_value());
    if (*out.decisions[b] != kNobody) {
      EXPECT_EQ(side_of(*out.decisions[b], k), Side::Left);
    }
  }
}

TEST(PiBsmEdge, BSideDecidesExactlyOneRoundAfterASide) {
  const std::uint32_t k = 3;
  const BsmConfig cfg{TopologyKind::Bipartite, true, k, 0, k};
  const auto proto = *resolve_protocol(cfg);
  const auto sched = PiBsmSchedule::compute(0);
  ASSERT_EQ(proto.total_rounds, sched.total_rounds);

  net::Engine engine(net::Topology(cfg.topology, k), 1);
  const auto inputs = matching::random_profile(k, 3);
  for (PartyId id = 0; id < 2 * k; ++id) {
    engine.set_process(id, make_bsm_process(cfg, proto, id, inputs.list(id)));
  }
  engine.run(sched.algo_decision + 1);  // rounds 0 .. algo_decision
  for (PartyId a = 0; a < k; ++a) {
    EXPECT_TRUE(engine.process_as<BsmProcess>(a).decided()) << "A decides at algo_decision";
  }
  for (PartyId b = k; b < 2 * k; ++b) {
    EXPECT_FALSE(engine.process_as<BsmProcess>(b).decided()) << "B waits one more Delta";
  }
  engine.run(1);
  for (PartyId b = k; b < 2 * k; ++b) {
    EXPECT_TRUE(engine.process_as<BsmProcess>(b).decided());
  }
}

TEST(PiBsmEdge, MirroredScheduleUsesRightSideBudget) {
  const BsmConfig cfg{TopologyKind::Bipartite, true, 7, 7, 2};
  const auto proto = *resolve_protocol(cfg);
  ASSERT_EQ(proto.kind, ProtocolSpec::Kind::PiBsm);
  EXPECT_EQ(proto.algo_side, Side::Right);
  EXPECT_EQ(proto.total_rounds, PiBsmSchedule::compute(cfg.tr).total_rounds);
}

}  // namespace
}  // namespace bsm::core
