// Tests for the bSM/sSM property checker: each violation class must be
// detected, and byzantine parties must be exempt.
#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "core/ssm.hpp"
#include "matching/generators.hpp"

namespace bsm::core {
namespace {

using Decisions = std::vector<std::optional<PartyId>>;

matching::PreferenceProfile square_profile() {
  // k = 2: everyone ranks in ascending id order.
  matching::PreferenceProfile p(2);
  p.set(0, {2, 3});
  p.set(1, {2, 3});
  p.set(2, {0, 1});
  p.set(3, {0, 1});
  return p;
}

TEST(Properties, CleanMatchingPasses) {
  const Decisions d{{2}, {3}, {0}, {1}};
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_TRUE(rep.all()) << rep.summary();
  EXPECT_TRUE(rep.violations.empty());
}

TEST(Properties, MissingOutputViolatesTermination) {
  const Decisions d{{2}, std::nullopt, {0}, {1}};
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_FALSE(rep.termination);
}

TEST(Properties, OwnSideOutputViolatesTermination) {
  const Decisions d{{1}, {3}, {0}, {1}};  // 0 output a left party
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_FALSE(rep.termination);
}

TEST(Properties, NonReciprocalMatchViolatesSymmetry) {
  const Decisions d{{2}, {3}, {1}, {1}};  // 0 -> 2 but 2 -> 1
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_FALSE(rep.symmetry);
}

TEST(Properties, SharedOutputViolatesNonCompetition) {
  const Decisions d{{2}, {2}, {kNobody}, {kNobody}};
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_FALSE(rep.non_competition);
}

TEST(Properties, SharedByzantineTargetAlsoViolatesNonCompetition) {
  // Both honest left parties matched to the *byzantine* 2: exactly the
  // scenario the paper's non-competition property exists to exclude.
  const Decisions d{{2}, {2}, std::nullopt, {kNobody}};
  const auto rep = check_bsm(2, {false, false, true, false}, square_profile(), d);
  EXPECT_FALSE(rep.non_competition);
}

TEST(Properties, BlockingPairViolatesStability) {
  // 0-3 and 1-2 matched, but 0 and 2 rank each other first.
  const Decisions d{{3}, {2}, {1}, {0}};
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_FALSE(rep.stability);
  EXPECT_TRUE(rep.symmetry);
}

TEST(Properties, MutuallyUnmatchedHonestPairBlocks) {
  const Decisions d{{kNobody}, {3}, {kNobody}, {1}};
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_FALSE(rep.stability);  // (0, 2) both alone and list each other
}

TEST(Properties, ByzantinePartiesExemptEverywhere) {
  // All violations located at byzantine parties: report must be clean.
  const Decisions d{{2}, std::nullopt, {0}, {0}};
  const auto rep = check_bsm(2, {false, true, false, true}, square_profile(), d);
  EXPECT_TRUE(rep.all()) << rep.summary();
}

TEST(Properties, UnmatchedHonestVsMatchedNotBlockingIfSatisfied) {
  // 1-2 matched; 0 and 3 alone. (0, 3): 3 is alone so prefers 0; 0 alone
  // prefers 3 -> blocking. Flip: make 3 matched to its favourite instead.
  matching::PreferenceProfile p = square_profile();
  const Decisions d{{kNobody}, {3}, {kNobody}, {1}};
  // (0, 2): blocking (both alone). Change 2 to matched-with-favourite:
  const Decisions d2{{kNobody}, {2}, {1}, {kNobody}};
  // now (0, 3): 3 alone, 0 alone -> still blocking; assert detection works
  EXPECT_FALSE(check_bsm(2, {false, false, false, false}, p, d2).stability);
}

TEST(Properties, SummaryEncodesFlags) {
  const Decisions d{{2}, {2}, {kNobody}, {kNobody}};
  const auto rep = check_bsm(2, {false, false, false, false}, square_profile(), d);
  EXPECT_EQ(rep.summary().size(), 4U);
  EXPECT_EQ(rep.summary()[3], 'n');  // non-competition violated -> lowercase
}

// ------------------------------------------------------------------- sSM

TEST(SsmProperties, MutualFavoritesMustMatch) {
  const std::vector<PartyId> favorites{2, 2, 0, 1};  // 0 <-> 2 mutual
  const Decisions bad{{3}, {kNobody}, {1}, {0}};
  const auto rep = check_ssm(2, {false, false, false, false}, favorites, bad);
  EXPECT_FALSE(rep.stability);
  const Decisions good{{2}, {kNobody}, {0}, {kNobody}};
  EXPECT_TRUE(check_ssm(2, {false, false, false, false}, favorites, good).all());
}

TEST(SsmProperties, NonMutualFavoritesUnconstrained) {
  const std::vector<PartyId> favorites{2, 3, 1, 0};  // nobody mutual
  const Decisions d{{kNobody}, {kNobody}, {kNobody}, {kNobody}};
  EXPECT_TRUE(check_ssm(2, {false, false, false, false}, favorites, d).all());
}

TEST(SsmProperties, ByzantineFavoriteExempt) {
  const std::vector<PartyId> favorites{2, 2, 0, 1};
  const Decisions d{{kNobody}, {kNobody}, {kNobody}, {kNobody}};
  // 2 is byzantine: the mutual pair (0, 2) no longer binds.
  EXPECT_TRUE(check_ssm(2, {false, false, true, false}, favorites, d).all());
}

// ------------------------------------------------------------- reductions

TEST(SsmReduction, FavoriteExpansionRanksFavoriteFirst) {
  const auto list = list_from_favorite(0, 4, 3);
  EXPECT_EQ(list, (matching::PreferenceList{4, 3, 5}));
  EXPECT_THROW((void)list_from_favorite(0, 1, 3), std::logic_error);  // same side
}

TEST(SsmReduction, ProfileFromFavoritesIsComplete) {
  const std::vector<PartyId> favorites{4, 3, 5, 1, 0, 2};
  const auto profile = profile_from_favorites(favorites, 3);
  EXPECT_TRUE(profile.complete());
  for (PartyId id = 0; id < 6; ++id) EXPECT_EQ(profile.list(id).front(), favorites[id]);
}

TEST(SsmReduction, Lemma3ThresholdArithmetic) {
  // k = 6 -> d = 3 groups of ceil(6/3) = 2: budgets halve (floored).
  EXPECT_EQ(reduced_thresholds(6, 3, 3, 5), (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
  // d = k: identity.
  EXPECT_EQ(reduced_thresholds(4, 4, 2, 3), (std::pair<std::uint32_t, std::uint32_t>{2, 3}));
  // The paper's Lemma 5 usage: from (k, tL >= k/3, tR >= k/3) down to
  // d = 3 with at least 1 byzantine per side.
  const auto [tl, tr] = reduced_thresholds(9, 3, 3, 3);
  EXPECT_GE(tl, 1U);
  EXPECT_GE(tr, 1U);
}

}  // namespace
}  // namespace bsm::core
