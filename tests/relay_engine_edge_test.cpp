// Additional edge coverage for the engine and relay layer: hostile frame
// variants, timing-window boundaries, conflicting majority votes, and
// engine bookkeeping.
#include <gtest/gtest.h>

#include "adversary/strategies.hpp"
#include "common/codec.hpp"
#include "net/engine.hpp"
#include "net/relay.hpp"

namespace bsm::net {
namespace {

class Collector final : public Process {
 public:
  explicit Collector(RelayMode mode) : router_(mode) {}
  void on_round(Context& ctx, Inbox inbox) override {
    for (auto& m : router_.route(ctx, inbox)) delivered_.push_back(std::move(m));
  }
  std::vector<AppMsg> delivered_;
  RelayRouter router_;
};

class RawSender final : public Process {
 public:
  RawSender(Round when, PartyId to, Bytes frame) : when_(when), to_(to), frame_(std::move(frame)) {}
  void on_round(Context& ctx, Inbox) override {
    if (ctx.round() == when_) ctx.send(to_, frame_);
  }

 private:
  Round when_;
  PartyId to_;
  Bytes frame_;
};

/// One-sided k = 2 fixture with a Collector at L1 and raw injectors.
struct Fixture {
  Fixture() : engine(Topology(TopologyKind::OneSided, 2), 1) {
    engine.set_process(0, std::make_unique<adversary::Silent>());
    engine.set_process(1, std::make_unique<Collector>(RelayMode::UnauthMajority));
    engine.set_process(2, std::make_unique<adversary::Silent>());
    engine.set_process(3, std::make_unique<adversary::Silent>());
  }
  Engine engine;
  [[nodiscard]] Collector& collector() { return dynamic_cast<Collector&>(engine.process(1)); }
};

[[nodiscard]] Bytes fwd_frame(PartyId src, PartyId dst, std::uint64_t id, Round tau,
                              const Bytes& body) {
  Writer w;
  w.u8(2);  // RelayFwd
  w.u32(src);
  w.u32(dst);
  w.u64(id);
  w.u32(tau);
  w.bytes(body);
  return w.take();
}

TEST(RelayEdge, ConflictingMajorityVotesNeverBothAccepted) {
  // Two relays vouch for different bodies under the same (src, id): with
  // k = 2 a strict majority needs both, so *neither* body is delivered.
  Fixture f;
  f.engine.set_corrupt(2, std::make_unique<RawSender>(0, 1, fwd_frame(0, 1, 5, 0, {1})));
  f.engine.set_corrupt(3, std::make_unique<RawSender>(0, 1, fwd_frame(0, 1, 5, 0, {2})));
  f.engine.run(3);
  EXPECT_TRUE(f.collector().delivered_.empty());
}

TEST(RelayEdge, AgreeingMajorityVotesAcceptOnce) {
  Fixture f;
  f.engine.set_corrupt(2, std::make_unique<RawSender>(0, 1, fwd_frame(0, 1, 5, 0, {9})));
  f.engine.set_corrupt(3, std::make_unique<RawSender>(0, 1, fwd_frame(0, 1, 5, 0, {9})));
  f.engine.run(3);
  ASSERT_EQ(f.collector().delivered_.size(), 1U);
  EXPECT_EQ(f.collector().delivered_[0].from, 0U);
  EXPECT_EQ(f.collector().delivered_[0].body, Bytes{9});
}

TEST(RelayEdge, DuplicateVotesFromOneRelayCountOnce) {
  // The same relay voting twice must not fake a majority.
  Fixture f;
  class DoubleVoter final : public Process {
   public:
    void on_round(Context& ctx, Inbox) override {
      if (ctx.round() > 1) return;
      ctx.send(1, fwd_frame(0, 1, 5, 0, {7}));
      ctx.send(1, fwd_frame(0, 1, 5, 0, {7}));
    }
  };
  f.engine.set_corrupt(2, std::make_unique<DoubleVoter>());
  f.engine.run(4);
  EXPECT_TRUE(f.collector().delivered_.empty());
}

TEST(RelayEdge, ForwardAddressedToSomeoneElseIgnored) {
  Fixture f;
  f.engine.set_corrupt(2, std::make_unique<RawSender>(0, 1, fwd_frame(0, 0, 5, 0, {9})));
  f.engine.set_corrupt(3, std::make_unique<RawSender>(0, 1, fwd_frame(0, 0, 5, 0, {9})));
  f.engine.run(3);
  EXPECT_TRUE(f.collector().delivered_.empty());
  EXPECT_GE(f.collector().router_.rejected(), 2U);
}

TEST(RelayEdge, TimedWindowBoundaryIsInclusive) {
  // A timed forward arriving exactly at tau + 2 is accepted; tau + 3 is
  // not. Drive the receiver directly with crafted signed frames.
  Engine engine(Topology(TopologyKind::OneSided, 2), 1);
  engine.set_process(0, std::make_unique<adversary::Silent>());
  engine.set_process(1, std::make_unique<Collector>(RelayMode::AuthTimed));
  engine.set_process(3, std::make_unique<adversary::Silent>());

  // Craft the signed content exactly as RelayRouter does.
  const Bytes body{4, 2};
  auto signed_content = [&](PartyId src, PartyId dst, std::uint64_t id, Round tau) {
    Writer w;
    w.str("relay");
    w.u32(src);
    w.u32(dst);
    w.u64(id);
    w.u32(tau);
    w.bytes(body);
    return w.take();
  };
  auto make_frame = [&](std::uint64_t id, Round tau) {
    Writer w;
    w.u8(2);
    w.u32(0);
    w.u32(1);
    w.u64(id);
    w.u32(tau);
    w.bytes(body);
    engine.pki().signer_for(0).sign(signed_content(0, 1, id, tau)).encode(w);
    return w.take();
  };
  // Relay 2 sends: at round 2 a frame stamped tau=0 (arrives round 3 =
  // tau+3: late) and at round 1 a frame stamped tau=0 (arrives round 2 =
  // tau+2: on time).
  class TwoSends final : public Process {
   public:
    TwoSends(Bytes on_time, Bytes late) : on_time_(std::move(on_time)), late_(std::move(late)) {}
    void on_round(Context& ctx, Inbox) override {
      if (ctx.round() == 1) ctx.send(1, on_time_);
      if (ctx.round() == 2) ctx.send(1, late_);
    }
    Bytes on_time_, late_;
  };
  engine.set_corrupt(2, std::make_unique<TwoSends>(make_frame(1, 0), make_frame(2, 0)));
  engine.run(5);
  auto& collector = dynamic_cast<Collector&>(engine.process(1));
  ASSERT_EQ(collector.delivered_.size(), 1U);  // only the tau+2 arrival
  EXPECT_GE(collector.router_.rejected(), 1U);
}

TEST(RelayEdge, SelfSendUsesDirectFrame) {
  Engine engine(Topology(TopologyKind::OneSided, 2), 1);
  class SelfTalker final : public Process {
   public:
    SelfTalker() : router_(RelayMode::UnauthMajority) {}
    void on_round(Context& ctx, Inbox inbox) override {
      for (auto& m : router_.route(ctx, inbox)) heard_.push_back(std::move(m));
      if (ctx.round() == 0) router_.send(ctx, ctx.self(), Bytes{1, 2});
    }
    RelayRouter router_;
    std::vector<AppMsg> heard_;
  };
  engine.set_process(0, std::make_unique<SelfTalker>());
  for (PartyId id = 1; id < 4; ++id) engine.set_process(id, std::make_unique<adversary::Silent>());
  engine.run(2);
  const auto& talker = dynamic_cast<SelfTalker&>(engine.process(0));
  ASSERT_EQ(talker.heard_.size(), 1U);
  EXPECT_EQ(talker.heard_[0].from, 0U);
}

TEST(EngineEdge, AccessorsValidateIds) {
  Engine engine(Topology(TopologyKind::FullyConnected, 1), 1);
  EXPECT_THROW(engine.set_process(5, std::make_unique<adversary::Silent>()), std::logic_error);
  EXPECT_THROW((void)engine.is_corrupt(5), std::logic_error);
  EXPECT_THROW((void)engine.view_hash(9), std::logic_error);
  EXPECT_THROW((void)engine.process(0), std::logic_error);  // none installed
}

TEST(EngineEdge, PartiesWithoutProcessesAreSkipped) {
  Engine engine(Topology(TopologyKind::FullyConnected, 1), 1);
  engine.set_process(0, std::make_unique<adversary::Silent>());
  EXPECT_NO_THROW(engine.run(3));  // party 1 has no process: inert
  EXPECT_EQ(engine.current_round(), 3U);
}

TEST(EngineEdge, CorruptionScheduledBeforeRunZeroActsFromStart) {
  Engine engine(Topology(TopologyKind::FullyConnected, 1), 1);
  class Chatty final : public Process {
   public:
    void on_round(Context& ctx, Inbox) override { ctx.send(1, {1}); }
  };
  engine.set_process(0, std::make_unique<Chatty>());
  class Count final : public Process {
   public:
    void on_round(Context&, Inbox inbox) override {
      count_ += inbox.size();
    }
    std::size_t count_ = 0;
  };
  engine.set_process(1, std::make_unique<Count>());
  engine.schedule_corruption(0, 0, std::make_unique<adversary::Silent>());
  engine.run(4);
  EXPECT_TRUE(engine.is_corrupt(0));
  EXPECT_EQ(dynamic_cast<Count&>(engine.process(1)).count_, 0U);
}

TEST(EngineEdge, ViewHashAdvancesEvenOnSilentRounds) {
  // The digest folds round numbers, so "nothing arrived in round r" is
  // itself observable — necessary for omission indistinguishability.
  Engine engine(Topology(TopologyKind::FullyConnected, 1), 1);
  engine.set_process(0, std::make_unique<adversary::Silent>());
  engine.set_process(1, std::make_unique<adversary::Silent>());
  const auto h0 = engine.view_hash(0);
  engine.run(1);
  const auto h1 = engine.view_hash(0);
  engine.run(1);
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, engine.view_hash(0));
}

}  // namespace
}  // namespace bsm::net
