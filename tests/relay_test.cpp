// Tests for the virtual-channel relay layer (Lemmas 6, 8, 10): delivery
// through honest relays, majority voting against garbling relays, signature
// rejection, replay protection, and the 2-Delta timing window.
#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "net/engine.hpp"
#include "net/relay.hpp"

namespace bsm::net {
namespace {

/// Owns a RelayRouter; performs scripted sends and records deliveries, and
/// (being a router user) does forwarding duty for everyone else.
class RelayUser final : public Process {
 public:
  struct ScriptedSend {
    Round round;
    PartyId to;
    Bytes body;
  };

  RelayUser(RelayMode mode, std::vector<ScriptedSend> script)
      : router_(mode), script_(std::move(script)) {}

  void on_round(Context& ctx, Inbox inbox) override {
    for (auto& msg : router_.route(ctx, inbox)) delivered_.push_back(std::move(msg));
    for (const auto& s : script_) {
      if (s.round == ctx.round()) router_.send(ctx, s.to, s.body);
    }
  }

  [[nodiscard]] const std::vector<AppMsg>& delivered() const { return delivered_; }
  [[nodiscard]] const RelayRouter& router() const { return router_; }

 private:
  RelayRouter router_;
  std::vector<ScriptedSend> script_;
  std::vector<AppMsg> delivered_;
};

/// Byzantine relay: behaves like an honest router user, except every
/// outgoing forward has one body byte flipped (content garbling).
class GarblingRelay final : public Process {
 public:
  explicit GarblingRelay(RelayMode mode) : router_(mode) {}

  void on_round(Context& ctx, Inbox inbox) override {
    struct Shim final : Context {
      explicit Shim(Context& base) : base_(&base) {}
      void send(PartyId to, const Bytes& payload) override {
        Bytes mutated = payload;
        if (!mutated.empty()) mutated.back() ^= 0x01;
        base_->send(to, mutated);
      }
      [[nodiscard]] Round round() const override { return base_->round(); }
      [[nodiscard]] PartyId self() const override { return base_->self(); }
      [[nodiscard]] const Topology& topology() const override { return base_->topology(); }
      [[nodiscard]] const crypto::Signer& signer() const override { return base_->signer(); }
      [[nodiscard]] const crypto::Pki& pki() const override { return base_->pki(); }
      Context* base_;
    } shim(ctx);
    (void)router_.route(shim, inbox);
  }

 private:
  RelayRouter router_;
};

/// Byzantine relay that buffers its inbox and performs its forwarding duty
/// `delay` rounds late (for the Lemma 10 timing window).
class DelayingRelay final : public Process {
 public:
  DelayingRelay(RelayMode mode, Round delay) : router_(mode), delay_(delay) {}

  void on_round(Context& ctx, Inbox inbox) override {
    // The inbox slice only lives for this round; a delaying relay must copy.
    buffer_.emplace_back(inbox.begin(), inbox.end());
    if (buffer_.size() > delay_) {
      (void)router_.route(ctx, buffer_.front());
      buffer_.erase(buffer_.begin());
    }
  }

 private:
  RelayRouter router_;
  Round delay_;
  std::vector<std::vector<Envelope>> buffer_;
};

class SilentProcess final : public Process {
 public:
  void on_round(Context&, Inbox) override {}
};

/// One-sided market of size k: L parties are RelayUsers, R parties are the
/// relays (honest RelayUsers by default; overridable per id).
struct Fixture {
  explicit Fixture(std::uint32_t k, RelayMode mode)
      : engine(Topology(TopologyKind::OneSided, k), /*pki_seed=*/1), mode_(mode) {
    for (PartyId id = 0; id < 2 * k; ++id) {
      engine.set_process(id, std::make_unique<RelayUser>(mode, std::vector<RelayUser::ScriptedSend>{}));
    }
  }

  void script(PartyId id, std::vector<RelayUser::ScriptedSend> sends) {
    engine.set_process(id, std::make_unique<RelayUser>(mode_, std::move(sends)));
  }

  [[nodiscard]] const RelayUser& user(PartyId id) {
    return dynamic_cast<const RelayUser&>(engine.process(id));
  }

  Engine engine;
  RelayMode mode_;
};

TEST(Relay, DirectCrossSideDelivery) {
  Fixture f(2, RelayMode::Direct);
  f.script(0, {{0, 2, Bytes{1, 2, 3}}});
  f.engine.run(2);
  ASSERT_EQ(f.user(2).delivered().size(), 1U);
  EXPECT_EQ(f.user(2).delivered()[0].from, 0U);
  EXPECT_EQ(f.user(2).delivered()[0].body, (Bytes{1, 2, 3}));
}

TEST(Relay, DirectRefusesVirtualChannels) {
  Fixture f(2, RelayMode::Direct);
  f.script(0, {{0, 1, Bytes{1}}});  // L-L without relaying enabled
  EXPECT_THROW(f.engine.run(1), std::logic_error);
}

TEST(Relay, MajorityDeliversInTwoRounds) {
  Fixture f(2, RelayMode::UnauthMajority);
  f.script(0, {{0, 1, Bytes{5, 6}}});
  f.engine.run(2);
  EXPECT_TRUE(f.user(1).delivered().empty());  // not yet: 2 * Delta
  f.engine.run(1);
  ASSERT_EQ(f.user(1).delivered().size(), 1U);
  EXPECT_EQ(f.user(1).delivered()[0].from, 0U);
  EXPECT_EQ(f.user(1).delivered()[0].body, (Bytes{5, 6}));
}

TEST(Relay, MajoritySurvivesOneGarblingRelayOfThree) {
  Fixture f(3, RelayMode::UnauthMajority);
  f.script(0, {{0, 1, Bytes{9}}});
  f.engine.set_corrupt(3, std::make_unique<GarblingRelay>(RelayMode::UnauthMajority));
  f.engine.run(4);
  ASSERT_EQ(f.user(1).delivered().size(), 1U);
  EXPECT_EQ(f.user(1).delivered()[0].body, (Bytes{9}));
}

TEST(Relay, MajorityFailsWithoutHonestMajority) {
  // k = 2: strict majority needs both relays; one silent byzantine relay
  // starves the channel (exactly why Theorem 4 requires tR < k/2).
  Fixture f(2, RelayMode::UnauthMajority);
  f.script(0, {{0, 1, Bytes{9}}});
  f.engine.set_corrupt(2, std::make_unique<SilentProcess>());
  f.engine.run(6);
  EXPECT_TRUE(f.user(1).delivered().empty());
}

TEST(Relay, MajorityRejectsSpoofedSource) {
  // A single byzantine relay fabricates a forward claiming src = 0; with
  // k = 3 the strict majority (2) is never reached.
  Fixture f(3, RelayMode::UnauthMajority);
  Writer w;
  w.u8(2);        // RelayFwd
  w.u32(0);       // claimed src
  w.u32(1);       // dst
  w.u64(77);      // id
  w.u32(0);       // tau
  w.bytes({66});  // body
  class RawSender final : public Process {
   public:
    explicit RawSender(Bytes frame) : frame_(std::move(frame)) {}
    void on_round(Context& ctx, Inbox) override {
      if (ctx.round() == 0) ctx.send(1, frame_);
    }
    Bytes frame_;
  };
  f.engine.set_corrupt(3, std::make_unique<RawSender>(w.data()));
  f.engine.run(4);
  EXPECT_TRUE(f.user(1).delivered().empty());
}

TEST(Relay, AuthDeliversWithSingleHonestRelay) {
  // k = 3, two of three relays silent-byzantine: Lemma 8 needs just one
  // honest forwarder.
  Fixture f(3, RelayMode::AuthSigned);
  f.script(0, {{0, 1, Bytes{1, 1}}});
  f.engine.set_corrupt(3, std::make_unique<SilentProcess>());
  f.engine.set_corrupt(4, std::make_unique<SilentProcess>());
  f.engine.run(4);
  ASSERT_EQ(f.user(1).delivered().size(), 1U);
  EXPECT_EQ(f.user(1).delivered()[0].from, 0U);
}

TEST(Relay, AuthRejectsGarbledContent) {
  // The only functioning relay garbles the body: signature verification
  // fails and nothing is delivered.
  Fixture f(2, RelayMode::AuthSigned);
  f.script(0, {{0, 1, Bytes{8}}});
  f.engine.set_corrupt(2, std::make_unique<GarblingRelay>(RelayMode::AuthSigned));
  f.engine.set_corrupt(3, std::make_unique<SilentProcess>());
  f.engine.run(5);
  EXPECT_TRUE(f.user(1).delivered().empty());
}

TEST(Relay, AuthAcceptsExactlyOncePerMessage) {
  // All three relays forward: the receiver must deduplicate on (src, id).
  Fixture f(3, RelayMode::AuthSigned);
  f.script(0, {{0, 1, Bytes{4}}, {0, 1, Bytes{4}}});
  f.engine.run(4);
  // Two scripted sends = two ids = two deliveries; not six.
  EXPECT_EQ(f.user(1).delivered().size(), 2U);
}

TEST(Relay, TimedAcceptsWithinWindow) {
  Fixture f(2, RelayMode::AuthTimed);
  f.script(0, {{0, 1, Bytes{3}}});
  f.engine.run(4);
  ASSERT_EQ(f.user(1).delivered().size(), 1U);
}

TEST(Relay, TimedRejectsLateForwards) {
  // Both relays byzantine: one silent, one forwarding 3 rounds late —
  // outside the 2 * Delta window, so the message is omitted, never late.
  Fixture f(2, RelayMode::AuthTimed);
  f.script(0, {{0, 1, Bytes{3}}});
  f.engine.set_corrupt(2, std::make_unique<DelayingRelay>(RelayMode::AuthTimed, 3));
  f.engine.set_corrupt(3, std::make_unique<SilentProcess>());
  f.engine.run(10);
  EXPECT_TRUE(f.user(1).delivered().empty());
}

TEST(Relay, TimedOmissionRequiresAllRelaysByzantine) {
  // One honest relay of two: delivery happens despite the delayer.
  Fixture f(2, RelayMode::AuthTimed);
  f.script(0, {{0, 1, Bytes{3}}});
  f.engine.set_corrupt(3, std::make_unique<DelayingRelay>(RelayMode::AuthTimed, 3));
  f.engine.run(10);
  ASSERT_EQ(f.user(1).delivered().size(), 1U);
}

TEST(Relay, MalformedFramesAreCountedNotFatal) {
  Fixture f(2, RelayMode::UnauthMajority);
  class Noise final : public Process {
   public:
    void on_round(Context& ctx, Inbox) override {
      if (ctx.round() == 0) ctx.send(0, Bytes{0xFF, 0xFF, 0xFF});
    }
  };
  f.engine.set_corrupt(2, std::make_unique<Noise>());
  EXPECT_NO_THROW(f.engine.run(3));
  EXPECT_GE(f.user(0).router().rejected(), 1U);
}

}  // namespace
}  // namespace bsm::net
