// End-to-end tests of byzantine stable roommates (bRM) — the Section 6
// extension: broadcast-then-Irving under byzantine batteries, justified
// abstention when no stable matching exists, and the refined checker.
#include <gtest/gtest.h>

#include "adversary/shims.hpp"
#include "adversary/strategies.hpp"
#include "core/roommates_bsm.hpp"

namespace bsm::core {
namespace {

using matching::RoommatePreferences;

RoommatesRunSpec make_spec(std::uint32_t n, std::uint32_t t, bool auth, std::uint64_t seed) {
  RoommatesRunSpec spec;
  spec.config = RoommatesConfig{n, t, auth};
  spec.inputs = matching::random_roommate_profile(n, seed);
  spec.pki_seed = seed + 9;
  return spec;
}

TEST(RoommatesBsm, SolvabilityConditions) {
  EXPECT_TRUE(roommates_solvable({6, 5, true}));
  EXPECT_TRUE(roommates_solvable({6, 1, false}));
  EXPECT_FALSE(roommates_solvable({6, 6, true}));
  EXPECT_FALSE(roommates_solvable({6, 2, false}));
  EXPECT_THROW((void)roommates_solvable({5, 1, true}), std::logic_error);  // odd n
}

TEST(RoommatesBsm, FaultFreeMatchesLocalIrving) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto spec = make_spec(6, 2, true, seed);
    const auto expected = matching::stable_roommates(spec.inputs);
    const auto out = run_roommates(std::move(spec));
    EXPECT_TRUE(out.report.all()) << out.report.summary();
    for (PartyId id = 0; id < 6; ++id) {
      ASSERT_TRUE(out.decisions[id].has_value());
      if (expected.has_value()) {
        EXPECT_EQ(*out.decisions[id], (*expected)[id]);
      } else {
        EXPECT_EQ(*out.decisions[id], kNobody) << "justified abstention expected";
      }
    }
  }
}

TEST(RoommatesBsm, JustifiedAbstentionOnUnsolvableInstance) {
  // The classic no-stable-matching instance: everyone must output nobody,
  // and the refined (weak) stability accepts that.
  auto spec = make_spec(4, 1, true, 0);
  spec.inputs = RoommatePreferences{{1, 2, 3}, {2, 0, 3}, {0, 1, 3}, {0, 1, 2}};
  const auto out = run_roommates(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
  for (PartyId id = 0; id < 4; ++id) {
    ASSERT_TRUE(out.decisions[id].has_value());
    EXPECT_EQ(*out.decisions[id], kNobody);
  }
}

TEST(RoommatesBsm, SilentByzantineWithinBudgetAuth) {
  for (std::uint32_t t : {1U, 3U, 5U}) {
    auto spec = make_spec(6, t, true, t);
    for (std::uint32_t i = 0; i < t; ++i) {
      spec.adversaries.emplace_back(i, std::make_unique<adversary::Silent>());
    }
    const auto out = run_roommates(std::move(spec));
    EXPECT_TRUE(out.report.all()) << "t=" << t << ": " << out.report.summary();
  }
}

TEST(RoommatesBsm, NoiseByzantineUnauth) {
  auto spec = make_spec(8, 2, false, 4);
  spec.adversaries.emplace_back(1, std::make_unique<adversary::RandomNoise>(3, 4));
  spec.adversaries.emplace_back(6, std::make_unique<adversary::RandomNoise>(5, 4));
  const auto out = run_roommates(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
}

TEST(RoommatesBsm, EquivocatorCannotSplitHonestAgents) {
  // A split-brain byzantine agent presents two different lists; broadcast
  // consistency must still leave all honest agents with one shared view.
  auto spec = make_spec(6, 1, true, 11);
  const RoommatesConfig cfg = spec.config;
  auto inputs = spec.inputs;
  auto alt = matching::default_roommate_list(2, 6);
  spec.adversaries.emplace_back(
      2, std::make_unique<adversary::SplitBrain>(
             std::make_unique<RoommatesBtm>(cfg, 2, inputs[2]),
             std::make_unique<RoommatesBtm>(cfg, 2, alt),
             [](PartyId p) { return p < 3 ? 0 : 1; }));
  const auto out = run_roommates(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
}

TEST(RoommatesBsm, LyingInputsKeepProperties) {
  auto spec = make_spec(6, 2, true, 13);
  const RoommatesConfig cfg = spec.config;
  spec.adversaries.emplace_back(
      0, std::make_unique<RoommatesBtm>(cfg, 0, matching::default_roommate_list(0, 6)));
  spec.adversaries.emplace_back(
      5, std::make_unique<RoommatesBtm>(cfg, 5, matching::default_roommate_list(5, 6)));
  const auto out = run_roommates(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
}

TEST(CheckBrm, DetectsEachViolation) {
  const RoommatePreferences prefs{{1, 2, 3}, {0, 2, 3}, {3, 0, 1}, {2, 0, 1}};
  const std::vector<bool> honest(4, false);
  using D = std::vector<std::optional<PartyId>>;

  // Clean: 0-1 and 2-3 (everyone's favourite pairing).
  EXPECT_TRUE(check_brm(4, honest, prefs, D{{1}, {0}, {3}, {2}}).all());
  // Termination: missing output and self-match.
  EXPECT_FALSE(check_brm(4, honest, prefs, D{std::nullopt, {0}, {3}, {2}}).termination);
  EXPECT_FALSE(check_brm(4, honest, prefs, D{{0}, {0}, {3}, {2}}).termination);
  // Symmetry.
  EXPECT_FALSE(check_brm(4, honest, prefs, D{{1}, {2}, {3}, {2}}).symmetry);
  // Non-competition.
  EXPECT_FALSE(check_brm(4, honest, prefs, D{{1}, {1}, {kNobody}, {kNobody}}).non_competition);
  // Weak stability: 0-2, 1-3 matched but 0 and 1 prefer each other.
  EXPECT_FALSE(check_brm(4, honest, prefs, D{{2}, {3}, {0}, {1}}).stability);
  // All-unmatched honest pair is permitted (justified abstention).
  EXPECT_TRUE(
      check_brm(4, honest, prefs, D{{kNobody}, {kNobody}, {kNobody}, {kNobody}}).all());
  // ...but matched-vs-unmatched blocking still counts: 1 is matched to 2
  // yet prefers the unmatched 0, who wants anyone.
  EXPECT_FALSE(check_brm(4, honest, prefs, D{{kNobody}, {2}, {1}, {kNobody}}).stability);
  // Byzantine parties are exempt.
  EXPECT_TRUE(check_brm(4, {true, true, false, false}, prefs, D{{1}, {1}, {3}, {2}}).all());
}

TEST(RoommatesBsm, RunnerRejectsUnsolvableSettings) {
  auto spec = make_spec(6, 2, false, 1);  // 3t >= n without PKI
  EXPECT_THROW((void)run_roommates(std::move(spec)), std::logic_error);
}

}  // namespace
}  // namespace bsm::core
