// Tests for Irving's stable roommates algorithm, differential-tested
// against the exhaustive oracle, plus profile validation and codecs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "matching/roommates.hpp"

namespace bsm::matching {
namespace {

TEST(RoommateProfile, Validation) {
  EXPECT_TRUE(is_valid_roommate_profile({{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}));
  EXPECT_FALSE(is_valid_roommate_profile({}));                          // empty
  EXPECT_FALSE(is_valid_roommate_profile({{1}, {0}, {0}}));             // odd n
  EXPECT_FALSE(is_valid_roommate_profile({{1, 1}, {0, 2}}));            // dup / size
  EXPECT_FALSE(is_valid_roommate_profile({{0}, {1}}));                  // self-ranking
  EXPECT_TRUE(is_valid_roommate_profile({{1}, {0}}));                   // n = 2
}

TEST(Roommates, TrivialPair) {
  const auto m = stable_roommates({{1}, {0}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], 1U);
  EXPECT_EQ((*m)[1], 0U);
}

TEST(Roommates, IrvingTextbookInstance) {
  // The 6-agent instance from Irving's 1985 paper (0-indexed); it admits a
  // stable matching {0-5, 1-2, 3-4} — i.e. 1-3, 2-6, 4-5 in 1-indexing.
  const RoommatePreferences prefs{
      {3, 5, 1, 2, 4},  // 1: 4 6 2 3 5
      {5, 2, 3, 0, 4},  // 2: 6 3 4 1 5
      {1, 3, 4, 5, 0},  // 3: 2 4 5 6 1
      {2, 5, 1, 0, 4},  // 4: 3 6 2 1 5
      {2, 1, 3, 0, 5},  // 5: 3 2 4 1 6
      {4, 0, 1, 3, 2},  // 6: 5 1 2 4 3
  };
  const auto m = stable_roommates(prefs);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(is_stable_roommates(prefs, *m));
}

TEST(Roommates, ClassicNoSolutionInstance) {
  // Three agents rank each other cyclically and everyone ranks agent 3
  // last: the classic 4-agent instance with no stable matching.
  const RoommatePreferences prefs{
      {1, 2, 3},  // 0 prefers 1
      {2, 0, 3},  // 1 prefers 2
      {0, 1, 3},  // 2 prefers 0
      {0, 1, 2},
  };
  EXPECT_FALSE(stable_roommates(prefs).has_value());
  EXPECT_TRUE(all_stable_roommate_matchings(prefs).empty());
}

TEST(Roommates, BlockingPairDetection) {
  const RoommatePreferences prefs{
      {1, 2, 3},
      {0, 2, 3},
      {3, 0, 1},
      {2, 0, 1},
  };
  // Matching 0-2, 1-3: (0, 1) prefer each other.
  const RoommateMatching m{2, 3, 0, 1};
  const auto blocking = roommate_blocking_pairs(prefs, m);
  EXPECT_FALSE(blocking.empty());
  EXPECT_FALSE(is_stable_roommates(prefs, m));
  // Matching 0-1, 2-3 is stable.
  EXPECT_TRUE(is_stable_roommates(prefs, {1, 0, 3, 2}));
}

TEST(Roommates, UnmatchedAgentsFormBlockingPairs) {
  const RoommatePreferences prefs{{1}, {0}};
  EXPECT_EQ(roommate_blocking_pairs(prefs, {kNobody, kNobody}).size(), 1U);
}

class RoommatesRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoommatesRandom, AgreesWithBruteForceOracle) {
  for (const std::uint32_t n : {4U, 6U, 8U}) {
    const auto prefs = random_roommate_profile(n, GetParam() * 257 + n);
    const auto oracle = all_stable_roommate_matchings(prefs);
    const auto irving = stable_roommates(prefs);
    ASSERT_EQ(irving.has_value(), !oracle.empty())
        << "existence disagreement at n=" << n << " seed=" << GetParam();
    if (irving.has_value()) {
      EXPECT_TRUE(is_stable_roommates(prefs, *irving));
      EXPECT_NE(std::find(oracle.begin(), oracle.end(), *irving), oracle.end())
          << "Irving's output not among the oracle's stable matchings";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoommatesRandom, ::testing::Range<std::uint64_t>(0, 60));

TEST(Roommates, LargerInstancesStayStable) {
  int solved = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto prefs = random_roommate_profile(12, seed + 1000);
    const auto m = stable_roommates(prefs);
    if (m.has_value()) {
      ++solved;
      EXPECT_TRUE(is_stable_roommates(prefs, *m));
    }
  }
  EXPECT_GT(solved, 0) << "random 12-agent instances should usually be solvable";
}

TEST(RoommateCodec, RoundTripAndValidation) {
  const std::vector<PartyId> list{2, 1, 3};
  const auto decoded = decode_roommate_list(encode_roommate_list(list), 0, 4);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, list);
  // Wrong owner (list contains owner), wrong size, duplicates, garbage.
  EXPECT_FALSE(decode_roommate_list(encode_roommate_list({0, 1, 3}), 0, 4).has_value());
  EXPECT_FALSE(decode_roommate_list(encode_roommate_list({2, 1}), 0, 4).has_value());
  EXPECT_FALSE(decode_roommate_list(encode_roommate_list({2, 2, 3}), 0, 4).has_value());
  EXPECT_FALSE(decode_roommate_list({0xFF, 0x01}, 0, 4).has_value());
}

TEST(RoommateCodec, FuzzNeverThrows) {
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    EXPECT_NO_THROW((void)decode_roommate_list(rng.random_bytes(rng.below(48)), 1, 6));
  }
}

TEST(RoommateCodec, DefaultListSkipsOwner) {
  EXPECT_EQ(default_roommate_list(2, 4), (std::vector<PartyId>{0, 1, 3}));
  EXPECT_EQ(default_roommate_list(0, 2), (std::vector<PartyId>{1}));
}

}  // namespace
}  // namespace bsm::matching
