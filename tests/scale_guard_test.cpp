// Memory-shape guards for the big-n fast path: a lazy-profile matching at
// n = 10^5 must run in O(n) live bytes (no hidden n x k materialization),
// and a sparse-stats engine must keep its channel tables proportional to
// the *active* channels, not n^2. Enforced with a counting global
// operator new/delete local to this test binary: every plain allocation
// carries a 16-byte size header, and the hook tracks live and peak heap
// bytes. Aligned-new allocations bypass the hook (none of the guarded
// paths use over-aligned types); the probes measure peak *deltas*, so the
// harness's own baseline allocations cancel out.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "matching/gale_shapley.hpp"
#include "matching/stability.hpp"
#include "matching/view.hpp"
#include "net/engine.hpp"

namespace {

constexpr std::size_t kHeader = 16;  // keeps malloc's max_align_t alignment

std::atomic<std::size_t> g_live{0};
std::atomic<std::size_t> g_peak{0};

void note_alloc(std::size_t size) noexcept {
  const std::size_t live = g_live.fetch_add(size, std::memory_order_relaxed) + size;
  std::size_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void* counted_new(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) throw std::bad_alloc{};
  *static_cast<std::size_t*>(raw) = size;
  note_alloc(size);
  return static_cast<char*>(raw) + kHeader;
}

void counted_delete(void* p) noexcept {
  if (p == nullptr) return;
  char* raw = static_cast<char*>(p) - kHeader;
  g_live.fetch_sub(*reinterpret_cast<std::size_t*>(raw), std::memory_order_relaxed);
  std::free(raw);
}

/// Peak-heap-delta probe over a scoped workload.
class PeakProbe {
 public:
  PeakProbe() { reset(); }

  void reset() noexcept {
    start_ = g_live.load(std::memory_order_relaxed);
    g_peak.store(start_, std::memory_order_relaxed);
  }

  /// Highest live-bytes excess over the probe's starting level.
  [[nodiscard]] std::size_t peak_delta() const noexcept {
    const std::size_t peak = g_peak.load(std::memory_order_relaxed);
    return peak > start_ ? peak - start_ : 0;
  }

 private:
  std::size_t start_ = 0;
};

}  // namespace

void* operator new(std::size_t size) { return counted_new(size); }
void* operator new[](std::size_t size) { return counted_new(size); }
void operator delete(void* p) noexcept { counted_delete(p); }
void operator delete[](void* p) noexcept { counted_delete(p); }
void operator delete(void* p, std::size_t) noexcept { counted_delete(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_delete(p); }

namespace bsm {
namespace {

TEST(ScaleGuard, CountingHookObservesAllocations) {
  PeakProbe probe;
  {
    std::vector<char> block(1 << 20);
    EXPECT_GE(probe.peak_delta(), std::size_t{1} << 20);
  }
  const std::size_t peak_after_free = probe.peak_delta();
  probe.reset();
  EXPECT_LT(probe.peak_delta(), peak_after_free + 1);  // reset rebases the peak
}

TEST(ScaleGuard, LazyMatchingAtN1e5StaysLinear) {
  // n = 10^5 parties: an accidental materialization would be
  // k^2 * 4 bytes * 2 sides = 20 GB of lists; the O(n) working set
  // (matching, proposal cursors, free queue) is ~2 MB. The 16 MB bound
  // leaves headroom for allocator slack while failing *any* O(n^2) slip.
  const std::uint32_t k = 50'000;
  const matching::LazyProfile view(k, 42);
  EXPECT_EQ(view.bytes_resident(), 0U);

  PeakProbe probe;
  const auto result = matching::gale_shapley_over(view);
  const std::size_t peak = probe.peak_delta();
  EXPECT_LT(peak, std::size_t{16} << 20) << "matching run must stay O(n) bytes";

  ASSERT_TRUE(matching::is_perfect_matching(result.matching, k));
  EXPECT_EQ(matching::sampled_blocking_pairs_over(view, result.matching, 10'000, 7), 0U);
}

TEST(ScaleGuard, SparseEngineChannelMemoryTracksActiveChannels) {
  // n = 2048 with one ring channel per party: the dense matrices would be
  // 2 * n^2 * 16 bytes = 134 MB before the first round; sparse tables stay
  // within a small multiple of the n active channels.
  constexpr std::uint32_t kHalf = 1024;

  class RingSender final : public net::Process {
   public:
    void on_round(net::Context& ctx, net::Inbox) override {
      ctx.send((ctx.self() + 1) % ctx.topology().n(), Bytes{9});
    }
  };

  PeakProbe probe;
  net::Engine engine(net::Topology(net::TopologyKind::FullyConnected, kHalf), 1,
                     net::StatsMode::Sparse);
  const std::uint32_t n = engine.topology().n();
  for (PartyId id = 0; id < n; ++id) engine.set_process(id, std::make_unique<RingSender>());
  engine.run(4);

  const std::size_t dense_would_be =
      2 * static_cast<std::size_t>(n) * n * sizeof(net::TrafficStats::Counter);
  EXPECT_LT(engine.stats().channel_bytes_resident(), dense_would_be / 64);
  EXPECT_LT(probe.peak_delta(), dense_would_be / 8)
      << "sparse engine must never allocate dense-matrix-sized blocks";
  EXPECT_EQ(engine.stats().sparse_channels.size(), n);
  EXPECT_EQ(engine.stats().messages, std::uint64_t{n} * 4);
}

}  // namespace
}  // namespace bsm
