// The delivery-schedule subsystem's contracts:
//
//  1. Transcript preservation — the synchronous schedule (null policy OR
//     an installed SynchronousPolicy) reproduces the engine's historical
//     transcripts byte for byte, full RunOutcome equality included.
//  2. Schedule determinism — the same PolicyDesc seed yields byte-identical
//     transcripts across runs and across sweep thread counts.
//  3. The explorer — finds and minimizes a counterexample trace on a
//     scenario perturbed beyond its omission tolerance, certifies the
//     in-envelope menu violation-free, prunes equivalent schedules, and
//     reports thread-count-independent numbers.
//  4. Replay — a serialized ScheduleTrace parses back and reproduces the
//     violating run bit for bit.
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "sched/explorer.hpp"
#include "sched/policy.hpp"
#include "sched/trace.hpp"

namespace bsm {
namespace {

using core::AdversaryDesc;
using core::Battery;
using core::ScenarioSpec;
using sched::PolicyDesc;
using sched::ScheduleOp;
using sched::ScheduleTrace;

[[nodiscard]] ScenarioSpec base_scenario(std::uint32_t k, std::uint32_t tl, std::uint32_t tr,
                                         Battery battery, std::uint64_t seed = 1) {
  ScenarioSpec scenario;
  scenario.config = core::BsmConfig{net::TopologyKind::FullyConnected, true, k, tl, tr};
  scenario.input_seed = seed;
  scenario.pki_seed = seed + 1;
  core::apply_battery(scenario, battery, seed);
  return scenario;
}

// ------------------------------------------------------------- trace codec

TEST(ScheduleTrace, SerializeParseRoundTrips) {
  ScheduleTrace trace;
  trace.ops.push_back({ScheduleOp::Kind::Drop, 3, 0, 2, 1});
  trace.ops.push_back({ScheduleOp::Kind::Delay, 4, 1, 3, 2});
  trace.ops.push_back({ScheduleOp::Kind::Rank, 5, 2, 0, 7});

  const std::string text = trace.serialize();
  EXPECT_EQ(text, "drop@3:0>2;delay@4:1>3*2;rank@5:2>0*7");
  const auto parsed = ScheduleTrace::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, trace);
  EXPECT_EQ(parsed->digest(), trace.digest());

  const auto empty = ScheduleTrace::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(ScheduleTrace, ParseRejectsJunk) {
  for (const char* junk :
       {"drop", "drop@", "drop@1", "drop@1:2", "drop@1:2>", "drop@1:2>x", "nuke@1:0>1",
        "delay@1:0>1", "rank@1:0>1", "delay@1:0>1*0", "drop@1:0>1*", "drop@-1:0>1",
        "drop@1:0>1;;drop@2:0>1", "drop@99999999999:0>1", "drop@1:0>1;",
        "drop@1:0>1*7"}) {
    EXPECT_FALSE(ScheduleTrace::parse(junk).has_value()) << junk;
  }
}

// -------------------------------------------------- transcript preservation

TEST(SchedPolicy, SynchronousPolicyIsTranscriptIdentical) {
  // Null policy (the engine fast path) vs an installed SynchronousPolicy:
  // the policy code path (verdicts, merge, stable sort) must not move a
  // single byte. Full RunOutcome equality covers view hashes, decisions,
  // property verdicts, and every traffic counter.
  const auto scenario = base_scenario(3, 1, 1, Battery::Liars);

  auto fast = core::run_bsm(core::to_run_spec(scenario));
  auto spec = core::to_run_spec(scenario);
  ASSERT_EQ(spec.policy, nullptr) << "synchronous desc must materialize the null fast path";
  spec.policy = std::make_unique<sched::SynchronousPolicy>();
  const auto via_policy = core::run_bsm(std::move(spec));

  EXPECT_TRUE(fast == via_policy) << "SynchronousPolicy changed the transcript";
}

TEST(SchedPolicy, DefaultGridIsUnchangedByTheScheduleAxis) {
  // A SweepGrid that never sets scheds must produce cell-for-cell the same
  // scenarios as before the axis existed (one synchronous desc).
  core::SweepGrid grid;
  grid.ks = {2};
  grid.seeds = {1, 2};
  const auto cells = grid.cells();
  ASSERT_FALSE(cells.empty());
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.sched.is_synchronous());
    EXPECT_TRUE(cell.sched == PolicyDesc{});
  }
}

// ----------------------------------------------------- schedule determinism

[[nodiscard]] std::vector<ScenarioSpec> delay_grid() {
  core::SweepGrid grid;
  grid.ks = {2, 3};
  grid.seeds = {1, 2};
  grid.batteries = {Battery::Silent, Battery::Liars};
  PolicyDesc delay;
  delay.kind = PolicyDesc::Kind::RandomDelay;
  delay.max_delay = 2;
  delay.delay_permille = 400;
  grid.scheds = core::schedule_axis(delay, 3);
  return grid.cells();
}

TEST(SchedPolicy, SameSeedSameTranscriptAcrossRunsAndThreadCounts) {
  const auto cells = delay_grid();
  ASSERT_GE(cells.size(), 64U);

  const auto serial = core::run_sweep(cells, {.threads = 1});
  const auto parallel = core::run_sweep(cells, {.threads = 4});
  const auto again = core::run_sweep(cells, {.threads = 4});

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].outcome.has_value(), parallel[i].outcome.has_value());
    if (!serial[i].outcome.has_value()) continue;
    EXPECT_TRUE(*serial[i].outcome == *parallel[i].outcome)
        << "thread count changed a scheduled transcript at " << cells[i].config.describe();
    EXPECT_TRUE(*parallel[i].outcome == *again[i].outcome)
        << "repeated run changed a scheduled transcript at " << cells[i].config.describe();
  }
}

TEST(SchedPolicy, DifferentScheduleSeedsPerturbDifferently) {
  // The (setting x schedule-seed) axis must actually fan out: with a high
  // delay probability over the corrupt-adjacent envelope, at least one
  // pair of schedule seeds must produce different transcripts somewhere.
  const auto cells = delay_grid();
  const auto results = core::run_sweep(cells, {.threads = 1});
  bool any_difference = false;
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    const auto& a = results[i];
    const auto& b = results[i + 1];
    if (!a.outcome.has_value() || !b.outcome.has_value()) continue;
    if (a.scenario.sched.kind != PolicyDesc::Kind::RandomDelay) continue;
    const bool same_setting = a.scenario.config.describe() == b.scenario.config.describe() &&
                              a.scenario.input_seed == b.scenario.input_seed;
    if (same_setting && a.scenario.sched.seed != b.scenario.sched.seed &&
        a.outcome->view_hashes != b.outcome->view_hashes) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference) << "every schedule seed produced the identical transcript";
}

TEST(SchedPolicy, InEnvelopeSchedulesPreserveProperties) {
  // Perturbing only corrupt-adjacent channels is within the byzantine
  // guarantee: every solvable cell must keep all four properties under
  // RandomDelay and TargetedOmission schedules alike.
  core::SweepGrid grid;
  grid.ks = {2, 3};
  grid.seeds = {1, 2};
  grid.batteries = {Battery::Silent, Battery::Liars, Battery::Omission};
  PolicyDesc omit;
  omit.kind = PolicyDesc::Kind::TargetedOmission;
  omit.omission_budget = 3;
  grid.scheds = {PolicyDesc{}, omit};
  const auto results = core::run_sweep(grid.cells(), {.threads = 4});
  std::size_t ran = 0;
  for (const auto& cell : results) {
    if (!cell.outcome.has_value()) continue;
    ++ran;
    EXPECT_TRUE(cell.outcome->report.all())
        << "in-envelope schedule broke properties at " << cell.scenario.config.describe();
  }
  EXPECT_GT(ran, 0U);
}

TEST(SchedPolicy, TargetedOmissionRespectsItsBudget) {
  // The policy may drop at most omission_budget deliveries per target.
  auto scenario = base_scenario(3, 1, 1, Battery::Silent);
  scenario.sched.kind = PolicyDesc::Kind::TargetedOmission;
  scenario.sched.omission_budget = 2;
  const auto cell = core::run_scenario(scenario);
  ASSERT_TRUE(cell.outcome.has_value());
  EXPECT_LE(cell.outcome->traffic.dropped_messages,
            2ULL * scenario.adversaries.size());
  EXPECT_GT(cell.outcome->traffic.dropped_messages, 0U)
      << "an omission schedule over live channels should drop something";
}

// ----------------------------------------------------------------- explorer

TEST(Explorer, InEnvelopeScheduleSpaceIsViolationFree) {
  // Drops and delays on corrupt-adjacent channels are schedules the
  // protocol must tolerate; the explorer certifies a bounded slice of them.
  sched::ExplorerOptions opts;
  opts.max_depth = 2;
  const auto report = sched::explore(base_scenario(2, 1, 0, Battery::Silent), opts);
  EXPECT_GT(report.explored, 10U);
  EXPECT_EQ(report.violations, 0U);
  EXPECT_TRUE(report.all_satisfied());
  EXPECT_FALSE(report.counterexample.has_value());
}

TEST(Explorer, PrunesEquivalentSchedules) {
  // A delay past the horizon is indistinguishable from a drop: the trail
  // digests collide and the duplicate schedule must be pruned.
  sched::ExplorerOptions opts;
  opts.max_depth = 1;
  opts.max_delay = 8;
  const auto report = sched::explore(base_scenario(2, 1, 0, Battery::Silent), opts);
  EXPECT_GT(report.pruned, 0U);
}

TEST(Explorer, ReportIsThreadCountIndependent) {
  sched::ExplorerOptions serial;
  serial.max_depth = 2;
  serial.threads = 1;
  sched::ExplorerOptions parallel = serial;
  parallel.threads = 4;
  const auto scenario = base_scenario(2, 1, 0, Battery::Liars);
  const auto a = sched::explore(scenario, serial);
  const auto b = sched::explore(scenario, parallel);
  EXPECT_EQ(a.explored, b.explored);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.depth_reached, b.depth_reached);
}

/// The engineered beyond-tolerance scenario: nobody is corrupted, so the
/// setting tolerates zero faults, and the explorer is allowed to perturb
/// honest-honest channels — one dropped preference message must break a
/// property.
[[nodiscard]] sched::ExplorerReport beyond_tolerance_report() {
  sched::ExplorerOptions opts;
  opts.max_depth = 2;
  opts.corrupt_adjacent_only = false;
  return sched::explore(base_scenario(2, 0, 0, Battery::Silent), opts);
}

TEST(Explorer, FindsAndMinimizesACounterexampleBeyondTolerance) {
  const auto report = beyond_tolerance_report();
  EXPECT_GT(report.violations, 0U);
  EXPECT_FALSE(report.all_satisfied());
  ASSERT_TRUE(report.counterexample.has_value());
  ASSERT_FALSE(report.counterexample->empty());
  ASSERT_FALSE(report.counterexample_views.empty());

  // 1-minimality: the greedy shrink re-verified every removal, so deleting
  // any single remaining op must make the violation disappear.
  const auto scenario = base_scenario(2, 0, 0, Battery::Silent);
  for (std::size_t i = 0; i < report.counterexample->ops.size(); ++i) {
    ScenarioSpec weakened = scenario;
    weakened.sched.kind = PolicyDesc::Kind::Scripted;
    weakened.sched.trace = *report.counterexample;
    weakened.sched.trace.ops.erase(weakened.sched.trace.ops.begin() +
                                   static_cast<std::ptrdiff_t>(i));
    const auto cell = core::run_scenario(weakened);
    ASSERT_TRUE(cell.outcome.has_value());
    EXPECT_TRUE(cell.outcome->report.all())
        << "op " << i << " of the minimized trace is redundant: "
        << report.counterexample->serialize();
  }
}

TEST(Explorer, SerializedCounterexampleReplaysBitForBit) {
  const auto report = beyond_tolerance_report();
  ASSERT_TRUE(report.counterexample.has_value());

  // Round-trip through the text form — the path a trace takes through
  // JSON reports and `bsm_cli explore --replay`.
  const std::string text = report.counterexample->serialize();
  const auto parsed = ScheduleTrace::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(*parsed == *report.counterexample);

  ScenarioSpec replay = base_scenario(2, 0, 0, Battery::Silent);
  replay.sched.kind = PolicyDesc::Kind::Scripted;
  replay.sched.trace = *parsed;
  const auto first = core::run_scenario(replay);
  const auto second = core::run_scenario(replay);
  ASSERT_TRUE(first.outcome.has_value());
  ASSERT_TRUE(second.outcome.has_value());

  EXPECT_FALSE(first.outcome->report.all()) << "the replayed schedule must still violate";
  EXPECT_EQ(first.outcome->view_hashes, report.counterexample_views)
      << "replay diverged from the explorer's violating run";
  EXPECT_TRUE(*first.outcome == *second.outcome) << "replay is not deterministic";
}

TEST(Explorer, RefusesNonSynchronousScenarios) {
  auto scenario = base_scenario(2, 1, 0, Battery::Silent);
  scenario.sched.kind = PolicyDesc::Kind::RandomDelay;
  EXPECT_THROW((void)sched::explore(scenario), std::logic_error);
}

TEST(Explorer, RespectsTheScheduleCap) {
  sched::ExplorerOptions opts;
  opts.max_depth = 3;
  opts.corrupt_adjacent_only = false;
  opts.max_schedules = 50;
  const auto report = sched::explore(base_scenario(2, 1, 0, Battery::Silent), opts);
  EXPECT_LE(report.explored, 50U);
}

}  // namespace
}  // namespace bsm
