// The sharded-sweep layer's contract (src/core/shard.hpp), at the byte
// level:
//
//  1. Partition — ShardSpec slices are a balanced, exact tiling of the
//     grid, recomputable from "i/N" alone.
//  2. Byte-identity — merging the JSONL documents of any complete shard
//     set reproduces the single-process (1/1) document bit-for-bit, at
//     any shard count and any thread count.
//  3. Crash/resume — a file truncated at ANY byte and rerun with resume
//     converges to the uninterrupted bytes.
//  4. Persistence — an OracleCache round-trips through its on-disk form,
//     and a preloaded cache turns a second process's misses into hits.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/oracle.hpp"
#include "core/shard.hpp"

namespace bsm::core {
namespace {

namespace fs = std::filesystem;

/// 144 cells (>= the 128-cell acceptance floor): 2 topologies x 2 auths x
/// 9 (tl, tr) pairs at k=2 x 2 batteries x 2 seeds.
[[nodiscard]] std::vector<ScenarioSpec> shard_grid() {
  SweepGrid grid;
  grid.topologies = {net::TopologyKind::FullyConnected, net::TopologyKind::OneSided};
  grid.auths = {false, true};
  grid.ks = {2};
  grid.seeds = {1, 2};
  grid.batteries = {Battery::Silent, Battery::Liars};
  return grid.cells();
}

/// Stream one shard to a string with its own oracle (each shard acts as a
/// separate process; nothing shared through the global cache).
[[nodiscard]] std::string stream_to_string(const std::vector<ScenarioSpec>& cells,
                                           ShardSpec shard, unsigned threads,
                                           std::size_t checkpoint_every = 5) {
  OracleCache cache;
  StreamOptions opts;
  opts.shard = shard;
  opts.checkpoint_every = checkpoint_every;
  opts.sweep.threads = threads;
  opts.sweep.oracle = &cache;
  std::ostringstream out;
  (void)stream_sweep(cells, opts, out);
  return out.str();
}

/// A fresh per-test scratch directory under the system temp dir.
[[nodiscard]] fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("bsm_shard_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

TEST(ShardSpec, ParseAcceptsExactlyWellFormedSplits) {
  const auto spec = ShardSpec::parse("3/7");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 3U);
  EXPECT_EQ(spec->count, 7U);
  EXPECT_EQ(spec->str(), "3/7");
  EXPECT_EQ(ShardSpec::parse("1/1"), (ShardSpec{1, 1}));

  for (const char* bad : {"", "/", "3", "0/4", "5/4", "3/0", "-1/4", "1/4/2", "a/b", "1 /4",
                          "1/ 4", "01x/4", "3/100001"}) {
    EXPECT_FALSE(ShardSpec::parse(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(ShardSpec, RangesAreABalancedExactTiling) {
  for (std::size_t total : {0U, 1U, 7U, 144U, 1000U}) {
    for (std::uint32_t n : {1U, 2U, 3U, 7U, 13U}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      std::size_t min_len = total;
      std::size_t max_len = 0;
      for (std::uint32_t i = 1; i <= n; ++i) {
        const auto [begin, end] = ShardSpec{i, n}.range(total);
        EXPECT_EQ(begin, prev_end) << i << "/" << n << " of " << total;
        EXPECT_LE(begin, end);
        prev_end = end;
        covered += end - begin;
        min_len = std::min(min_len, end - begin);
        max_len = std::max(max_len, end - begin);
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
      EXPECT_LE(max_len - min_len, 1U) << "unbalanced " << n << "-way split of " << total;
    }
  }
}

TEST(Shard, GridDigestDetectsAnyCellChange) {
  const auto cells = shard_grid();
  const auto digest = grid_digest(cells);
  EXPECT_EQ(digest, grid_digest(shard_grid())) << "digest must be reproducible";

  auto reordered = cells;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(grid_digest(reordered), digest) << "digest must be order-dependent";

  auto edited = cells;
  edited[7].input_seed ^= 1;
  EXPECT_NE(grid_digest(edited), digest);

  EXPECT_NE(grid_digest({}), grid_digest({cells[0]}));
}

TEST(Shard, MergedShardsAreByteIdenticalToSingleProcessAtAnyShardAndThreadCount) {
  const auto cells = shard_grid();
  ASSERT_GE(cells.size(), 128U) << "the acceptance grid must have at least 128 cells";

  const std::string single = stream_to_string(cells, {1, 1}, /*threads=*/1);
  ASSERT_FALSE(single.empty());

  for (const std::uint32_t n : {1U, 2U, 4U, 7U}) {
    std::vector<std::string> docs;
    for (std::uint32_t i = 1; i <= n; ++i) {
      // Thread count varies per shard: it must never reach the bytes.
      docs.push_back(stream_to_string(cells, {i, n}, /*threads=*/1 + i % 4));
    }
    // Merge in reversed order: document order must not matter either.
    std::reverse(docs.begin(), docs.end());
    std::string error;
    const auto merged = merge_jsonl(docs, &error);
    ASSERT_TRUE(merged.has_value()) << "n=" << n << ": " << error;
    EXPECT_EQ(*merged, single) << "merged " << n << "-way split diverged from 1/1";
  }
}

TEST(Shard, StreamStatsAccountForTheWholeShard) {
  const auto cells = shard_grid();
  OracleCache cache;
  StreamOptions opts;
  opts.shard = {2, 3};
  opts.checkpoint_every = 5;
  opts.sweep.oracle = &cache;
  std::ostringstream out;
  const StreamStats st = stream_sweep(cells, opts, out);

  const auto [begin, end] = opts.shard.range(cells.size());
  EXPECT_EQ(st.cells, end - begin);
  EXPECT_EQ(st.emitted, end - begin);
  EXPECT_EQ(st.resumed, 0U);
  EXPECT_LE(st.ran, st.cells);
  EXPECT_GT(st.ran, 0U);
  EXPECT_TRUE(st.all_ok);
  EXPECT_NE(st.digest, 0U);

  // The digest folds the emitted cell lines, so two runs of the same shard
  // agree and a different shard disagrees.
  OracleCache cache2;
  opts.sweep.oracle = &cache2;
  std::ostringstream again;
  EXPECT_EQ(stream_sweep(cells, opts, again).digest, st.digest);
  opts.shard = {1, 3};
  std::ostringstream other;
  EXPECT_NE(stream_sweep(cells, opts, other).digest, st.digest);
}

TEST(Shard, ResumeConvergesFromAnyTruncationPoint) {
  const auto cells = shard_grid();
  const auto dir = scratch_dir("resume");
  const fs::path file = dir / "shard.jsonl";

  StreamOptions opts;
  opts.shard = {1, 2};
  opts.checkpoint_every = 5;
  OracleCache cache;
  opts.sweep.oracle = &cache;

  const auto pristine_res = stream_sweep_file(cells, opts, file.string(), /*resume=*/false);
  ASSERT_TRUE(pristine_res.error.empty()) << pristine_res.error;
  const std::string pristine = read_file(file);
  ASSERT_FALSE(pristine.empty());

  // Kill points: empty file, torn header, exact line boundaries around a
  // checkpoint group, torn cell mid-line, torn summary, and the midpoint.
  const auto first_nl = pristine.find('\n');
  const auto second_nl = pristine.find('\n', first_nl + 1);
  std::vector<std::size_t> cuts = {0,
                                   first_nl / 2,
                                   first_nl,      // header, no newline
                                   first_nl + 1,  // header line complete
                                   second_nl + 1,
                                   pristine.size() / 3,
                                   pristine.size() / 2,
                                   2 * pristine.size() / 3,
                                   pristine.size() - 5,  // torn summary
                                   pristine.size() - 1};
  for (const std::size_t cut : cuts) {
    {
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(), static_cast<std::streamsize>(cut));
    }
    OracleCache resume_cache;
    StreamOptions resume_opts = opts;
    resume_opts.sweep.oracle = &resume_cache;
    const auto res = stream_sweep_file(cells, resume_opts, file.string(), /*resume=*/true);
    ASSERT_TRUE(res.error.empty()) << "cut at byte " << cut << ": " << res.error;
    EXPECT_FALSE(res.resumed_complete);
    EXPECT_EQ(read_file(file), pristine) << "divergent bytes after resume from cut " << cut;
    EXPECT_EQ(res.stats.resumed + res.stats.emitted, res.stats.cells);
  }

  // Resuming the complete file is a no-op that reports the stored verdict.
  const auto done = stream_sweep_file(cells, opts, file.string(), /*resume=*/true);
  ASSERT_TRUE(done.error.empty()) << done.error;
  EXPECT_TRUE(done.resumed_complete);
  EXPECT_EQ(done.stats.emitted, 0U);
  EXPECT_EQ(done.stats.resumed, done.stats.cells);
  EXPECT_EQ(read_file(file), pristine);
}

TEST(Shard, ResumeRefusesAForeignHeader) {
  const auto cells = shard_grid();
  const auto dir = scratch_dir("foreign");
  const fs::path file = dir / "shard.jsonl";

  StreamOptions opts;
  opts.shard = {1, 2};
  OracleCache cache;
  opts.sweep.oracle = &cache;
  ASSERT_TRUE(stream_sweep_file(cells, opts, file.string(), false).error.empty());

  // Same file, different shard spec: a complete mismatching header must be
  // a hard error, not an overwrite.
  StreamOptions other = opts;
  other.shard = {2, 2};
  const auto res = stream_sweep_file(cells, other, file.string(), /*resume=*/true);
  EXPECT_FALSE(res.error.empty());
  EXPECT_NE(res.error.find("header"), std::string::npos) << res.error;

  // A different grid (one cell edited) must be refused too.
  auto edited = cells;
  edited[3].input_seed ^= 1;
  const auto res2 = stream_sweep_file(edited, opts, file.string(), /*resume=*/true);
  EXPECT_FALSE(res2.error.empty());

  // Without --resume the same call overwrites instead.
  const auto fresh = stream_sweep_file(cells, other, file.string(), /*resume=*/false);
  EXPECT_TRUE(fresh.error.empty()) << fresh.error;
}

TEST(Shard, MergeRejectsGapsOverlapsAndMismatches) {
  const auto cells = shard_grid();
  const std::string a = stream_to_string(cells, {1, 3}, 1);
  const std::string b = stream_to_string(cells, {2, 3}, 1);
  const std::string c = stream_to_string(cells, {3, 3}, 1);
  std::string error;

  EXPECT_FALSE(merge_jsonl({a, c}, &error).has_value()) << "gap accepted";
  EXPECT_NE(error.find("tile"), std::string::npos) << error;

  EXPECT_FALSE(merge_jsonl({a, b, b, c}, &error).has_value()) << "overlap accepted";

  EXPECT_FALSE(merge_jsonl({}, &error).has_value()) << "empty merge accepted";

  // A shard of a different grid carries a different grid digest.
  auto edited = cells;
  edited[0].input_seed ^= 1;
  const std::string foreign = stream_to_string(edited, {2, 3}, 1);
  EXPECT_FALSE(merge_jsonl({a, foreign, c}, &error).has_value());
  EXPECT_NE(error.find("grid"), std::string::npos) << error;

  // A mismatched checkpoint period changes the byte stream; refuse it.
  const std::string coarse = stream_to_string(cells, {2, 3}, 1, /*checkpoint_every=*/64);
  EXPECT_FALSE(merge_jsonl({a, coarse, c}, &error).has_value());

  // An incomplete document (summary missing) is never mergeable.
  const std::string torn = b.substr(0, b.rfind("{\"type\": \"summary\""));
  EXPECT_FALSE(merge_jsonl({a, torn, c}, &error).has_value());
  EXPECT_NE(error.find("incomplete"), std::string::npos) << error;

  // The untampered set still merges (the checks above were the culprits).
  EXPECT_TRUE(merge_jsonl({a, b, c}, &error).has_value()) << error;
}

TEST(Shard, OracleCachePersistsAcrossProcesses) {
  const auto cells = shard_grid();
  const auto dir = scratch_dir("okv");
  const std::string cache_dir = (dir / "cache").string();

  // Process one: run the first half against an empty cache, persist it.
  OracleCache first;
  StreamOptions opts;
  opts.shard = {1, 2};
  opts.sweep.oracle = &first;
  std::ostringstream sink;
  const StreamStats st1 = stream_sweep(cells, opts, sink);
  EXPECT_EQ(st1.sweep.oracle.hits + st1.sweep.oracle.misses, st1.cells);
  const std::size_t saved = save_oracle_cache(first, cache_dir);
  EXPECT_EQ(saved, st1.sweep.oracle.inserts) << "one file per distinct setting";
  EXPECT_GT(saved, 0U);

  // Saving again is a no-op: every file already exists.
  EXPECT_EQ(save_oracle_cache(first, cache_dir), 0U);

  // Process two: a fresh cache preloaded from disk re-runs the same shard
  // without a single derivation miss, and the bytes don't change.
  OracleCache second;
  EXPECT_EQ(load_oracle_cache(second, cache_dir), saved);
  StreamOptions opts2 = opts;
  opts2.sweep.oracle = &second;
  std::ostringstream sink2;
  const StreamStats st2 = stream_sweep(cells, opts2, sink2);
  EXPECT_EQ(st2.sweep.oracle.misses, 0U)
      << "preloaded cache must satisfy every lookup of the same shard";
  EXPECT_EQ(st2.sweep.oracle.hits, st1.cells);
  EXPECT_EQ(sink2.str(), sink.str()) << "persisted verdicts must not change the bytes";

  // Loading from a missing directory is zero entries, not an error.
  OracleCache empty;
  EXPECT_EQ(load_oracle_cache(empty, (dir / "absent").string()), 0U);
}

/// A small grid whose sweep populates an OracleCache with a handful of
/// distinct settings (the retry tests need >= 2 persisted files).
[[nodiscard]] std::vector<ScenarioSpec> retry_grid() {
  SweepGrid grid;
  grid.ks = {2};
  grid.tls = {0, 1};
  grid.trs = {0, 1};
  return grid.cells();
}

TEST(Shard, OracleCacheSaveRetriesTransientFailures) {
  OracleCache cache;
  (void)run_sweep(retry_grid(), {.threads = 1, .oracle = &cache});
  const auto dir = scratch_dir("retry_transient");
  const std::size_t expected = save_oracle_cache(cache, (dir / "baseline").string());
  ASSERT_GE(expected, 2U);

  // The first write attempt of the first file fails once; every file must
  // still land, after exactly one recorded backoff.
  std::vector<std::uint32_t> delays;
  SaveRetryOptions retry;
  retry.jitter_seed = 42;
  retry.sleep = [&](std::uint32_t ms) { delays.push_back(ms); };
  retry.fail_op = [](std::size_t op) { return op == 0; };
  const std::size_t saved = save_oracle_cache(cache, (dir / "a").string(), retry);
  EXPECT_EQ(saved, expected);
  ASSERT_EQ(delays.size(), 1U);
  EXPECT_GE(delays[0], 1U);
  EXPECT_LE(delays[0], retry.max_delay_ms);

  // Same seed, same failure pattern: the backoff schedule is deterministic.
  std::vector<std::uint32_t> delays_again;
  SaveRetryOptions retry_again = retry;
  retry_again.sleep = [&](std::uint32_t ms) { delays_again.push_back(ms); };
  EXPECT_EQ(save_oracle_cache(cache, (dir / "b").string(), retry_again), expected);
  EXPECT_EQ(delays_again, delays);

  // No torn or temporary files survive a successful save.
  for (const auto& file : fs::directory_iterator(dir / "a")) {
    EXPECT_EQ(file.path().extension(), ".okv") << file.path();
  }
}

TEST(Shard, OracleCacheSavePersistentFailureIsALoggedSkipNotAnAbort) {
  OracleCache cache;
  (void)run_sweep(retry_grid(), {.threads = 1, .oracle = &cache});
  const auto dir = scratch_dir("retry_persistent");
  const std::size_t expected = save_oracle_cache(cache, (dir / "baseline").string());
  ASSERT_GE(expected, 2U);

  // Every try of the first file's write fails; later files are untouched.
  std::ostringstream log;
  std::vector<std::uint32_t> delays;
  SaveRetryOptions retry;
  retry.attempts = 3;
  retry.sleep = [&](std::uint32_t ms) { delays.push_back(ms); };
  retry.fail_op = [&](std::size_t op) { return op < 3; };
  retry.log = &log;
  const std::size_t saved = save_oracle_cache(cache, (dir / "a").string(), retry);
  EXPECT_EQ(saved, expected - 1);
  EXPECT_EQ(delays.size(), 2U) << "attempts - 1 backoffs per failed operation";
  EXPECT_NE(log.str().find("oracle-cache: skipping"), std::string::npos) << log.str();
  EXPECT_NE(log.str().find("write kept failing"), std::string::npos) << log.str();

  // The skipped file left no litter, and a loader sees only complete files.
  std::size_t okv = 0;
  for (const auto& file : fs::directory_iterator(dir / "a")) {
    EXPECT_EQ(file.path().extension(), ".okv") << file.path();
    ++okv;
  }
  EXPECT_EQ(okv, expected - 1);
  OracleCache loaded;
  EXPECT_EQ(load_oracle_cache(loaded, (dir / "a").string()), expected - 1);

  // A rename-side persistent failure is the same verdict, labeled rename.
  std::ostringstream rename_log;
  SaveRetryOptions rename_retry;
  rename_retry.attempts = 3;
  rename_retry.sleep = [](std::uint32_t) {};
  rename_retry.fail_op = [](std::size_t op) { return op >= 1 && op <= 3; };
  rename_retry.log = &rename_log;
  EXPECT_EQ(save_oracle_cache(cache, (dir / "b").string(), rename_retry), expected - 1);
  EXPECT_NE(rename_log.str().find("rename kept failing"), std::string::npos) << rename_log.str();
  for (const auto& file : fs::directory_iterator(dir / "b")) {
    EXPECT_EQ(file.path().extension(), ".okv") << file.path();
  }
}

// ------------------------------------------------- fault-injection shim
//
// Simulates a shard writer that dies at its Nth line write: `fail` ends
// the document right before the line, `short_write` lands half of it.
// Every such document must be rejected by merge_jsonl (a complete-set
// validation) and repaired by stream_sweep_file --resume (a convergence
// guarantee), never crash either.

[[nodiscard]] std::string faulty_doc(const std::string& pristine, std::size_t nth_line,
                                     bool short_write) {
  std::size_t pos = 0;
  for (std::size_t line = 0; line < nth_line; ++line) {
    const auto nl = pristine.find('\n', pos);
    if (nl == std::string::npos) return pristine;  // past the end: no fault
    pos = nl + 1;
  }
  const auto nl = pristine.find('\n', pos);
  const std::size_t line_len = (nl == std::string::npos ? pristine.size() : nl) - pos;
  return pristine.substr(0, short_write ? pos + line_len / 2 : pos);
}

TEST(Shard, MergeRejectsEveryFaultInjectedDocument) {
  const auto cells = shard_grid();
  const std::string a = stream_to_string(cells, {1, 2}, 1);
  const std::string b = stream_to_string(cells, {2, 2}, 1);
  const std::size_t lines = static_cast<std::size_t>(std::count(b.begin(), b.end(), '\n'));
  ASSERT_GT(lines, 4U);

  std::string error;
  for (const std::size_t nth : {std::size_t{0}, std::size_t{1}, lines / 2, lines - 1}) {
    for (const bool short_write : {false, true}) {
      const std::string faulty = faulty_doc(b, nth, short_write);
      ASSERT_LT(faulty.size(), b.size());
      error.clear();
      EXPECT_FALSE(merge_jsonl({a, faulty}, &error).has_value())
          << "accepted a document cut at line " << nth << (short_write ? " (short write)" : "");
      EXPECT_FALSE(error.empty());
    }
  }
  // A fault past the document's end is no fault: the set still merges.
  EXPECT_TRUE(merge_jsonl({a, faulty_doc(b, lines + 1, false)}, &error).has_value()) << error;
}

TEST(Shard, ResumeRepairsEveryFaultInjectedFile) {
  const auto cells = shard_grid();
  const auto dir = scratch_dir("faulty_resume");
  const fs::path file = dir / "shard.jsonl";

  StreamOptions opts;
  opts.shard = {1, 2};
  opts.checkpoint_every = 5;
  OracleCache cache;
  opts.sweep.oracle = &cache;
  ASSERT_TRUE(stream_sweep_file(cells, opts, file.string(), false).error.empty());
  const std::string pristine = read_file(file);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(pristine.begin(), pristine.end(), '\n'));

  for (const std::size_t nth : {std::size_t{0}, std::size_t{2}, lines / 2, lines - 1}) {
    for (const bool short_write : {false, true}) {
      {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        const std::string faulty = faulty_doc(pristine, nth, short_write);
        out.write(faulty.data(), static_cast<std::streamsize>(faulty.size()));
      }
      OracleCache resume_cache;
      StreamOptions resume_opts = opts;
      resume_opts.sweep.oracle = &resume_cache;
      const auto res = stream_sweep_file(cells, resume_opts, file.string(), /*resume=*/true);
      ASSERT_TRUE(res.error.empty())
          << "line " << nth << (short_write ? " short" : " fail") << ": " << res.error;
      EXPECT_EQ(read_file(file), pristine)
          << "resume diverged after fault at line " << nth;
    }
  }
}

TEST(Shard, StreamFileReportsUnusablePathsAsErrors) {
  const auto cells = shard_grid();
  const auto dir = scratch_dir("bad_paths");
  StreamOptions opts;
  opts.shard = {1, 2};
  OracleCache cache;
  opts.sweep.oracle = &cache;

  // The target is a directory: both fresh-write and resume must fail with
  // a structured error, not a crash or a silent no-op.
  const auto fresh = stream_sweep_file(cells, opts, dir.string(), /*resume=*/false);
  EXPECT_FALSE(fresh.error.empty());
  const auto resumed = stream_sweep_file(cells, opts, dir.string(), /*resume=*/true);
  EXPECT_FALSE(resumed.error.empty());
}

TEST(Shard, PreloadedEntriesDoNotShadowFreshDerivations) {
  // preload() must be a pure cache warm-up: counters untouched, and an
  // in-memory entry always wins over a later preload of the same key.
  const auto cells = shard_grid();
  OracleCache cache;
  StreamOptions opts;
  opts.sweep.oracle = &cache;
  std::ostringstream sink;
  (void)stream_sweep(cells, opts, sink);
  const auto stats_before = cache.stats();

  const auto dir = scratch_dir("preload");
  const std::string cache_dir = (dir / "cache").string();
  ASSERT_GT(save_oracle_cache(cache, cache_dir), 0U);
  EXPECT_EQ(load_oracle_cache(cache, cache_dir), 0U)
      << "every persisted key is already resident, so nothing preloads";
  EXPECT_EQ(cache.stats().hits, stats_before.hits) << "preload must not touch counters";
  EXPECT_EQ(cache.stats().misses, stats_before.misses);
}

}  // namespace
}  // namespace bsm::core
