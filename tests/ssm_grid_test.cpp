// sSM through the Lemma 2 reduction, swept across the solvable grid: the
// simplified properties must hold in every solvable cell with mutual
// favorites under byzantine pressure (this is exactly the problem class
// the paper's impossibility proofs target).
#include <gtest/gtest.h>

#include "adversary/strategies.hpp"
#include "core/oracle.hpp"
#include "core/ssm.hpp"
#include "matching/generators.hpp"
#include "net/engine.hpp"

namespace bsm::core {
namespace {

using net::TopologyKind;

/// Favorites with all pairs mutual: i on the left <-> k + (i rotated).
[[nodiscard]] std::vector<PartyId> mutual_favorites(std::uint32_t k, std::uint32_t rotate) {
  std::vector<PartyId> favorites(2 * k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const PartyId left = i;
    const PartyId right = k + (i + rotate) % k;
    favorites[left] = right;
    favorites[right] = left;
  }
  return favorites;
}

class SsmGrid : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(SsmGrid, SolvableCellsKeepSimplifiedProperties) {
  const TopologyKind topo = GetParam();
  for (const bool auth : {false, true}) {
    for (const std::uint32_t k : {2U, 3U}) {
      for (std::uint32_t tl = 0; tl <= k; ++tl) {
        for (std::uint32_t tr = 0; tr <= k; ++tr) {
          const BsmConfig cfg{topo, auth, k, tl, tr};
          if (!solvable(cfg)) continue;
          SsmRunSpec spec;
          spec.config = cfg;
          spec.favorites = mutual_favorites(k, (tl + tr) % k);
          for (std::uint32_t i = 0; i < tl; ++i) {
            spec.adversaries.push_back({i, 0, std::make_unique<adversary::Silent>()});
          }
          for (std::uint32_t i = 0; i < tr; ++i) {
            spec.adversaries.push_back(
                {k + i, 0, std::make_unique<adversary::RandomNoise>(i + 3, 2)});
          }
          const auto out = run_ssm(std::move(spec));
          EXPECT_TRUE(out.report.all()) << cfg.describe() << " -> " << out.report.summary();
          // Untouched mutual pairs must actually be matched (not just
          // vacuously unconstrained): check the honest-honest pairs.
          const auto favorites = mutual_favorites(k, (tl + tr) % k);
          for (PartyId l = tl; l < k; ++l) {
            const PartyId r = favorites[l];
            if (r < k + tr) continue;  // partner corrupted
            EXPECT_EQ(out.decisions[l], std::optional<PartyId>{r}) << cfg.describe();
            EXPECT_EQ(out.decisions[r], std::optional<PartyId>{l}) << cfg.describe();
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, SsmGrid,
                         ::testing::Values(TopologyKind::FullyConnected, TopologyKind::OneSided,
                                           TopologyKind::Bipartite),
                         [](const ::testing::TestParamInfo<TopologyKind>& info) {
                           std::string name = net::to_string(info.param);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(SsmGrid, EngineObserverSeesEveryDeliveredMessage) {
  // The observer wiretap undercounts nothing: its count equals the
  // engine's own delivered-message statistics.
  net::Engine engine(net::Topology(TopologyKind::FullyConnected, 2), 1);
  std::uint64_t observed = 0;
  engine.set_observer([&](const net::Envelope&) { ++observed; });
  class Chatty final : public net::Process {
   public:
    void on_round(net::Context& ctx, net::Inbox) override {
      for (PartyId p = 0; p < 4; ++p) ctx.send(p, Bytes{1});
    }
  };
  for (PartyId id = 0; id < 4; ++id) engine.set_process(id, std::make_unique<Chatty>());
  engine.run(5);
  // Messages sent in rounds 0..3 get delivered by round 4; round 4's sends
  // are still in flight.
  EXPECT_EQ(observed, 4U * 4U * 4U);
  EXPECT_EQ(engine.stats().messages, 4U * 4U * 5U);
}

}  // namespace
}  // namespace bsm::core
