// Failure-injection stress: heavy garbage, replay, combined batteries,
// adaptive corruption waves, and larger markets. Nothing here checks a
// specific output value — these tests assert that no hostile input stream
// can crash a decoder, stall a schedule, or break a property inside the
// solvable region.
#include <gtest/gtest.h>

#include "adversary/shims.hpp"
#include "adversary/strategies.hpp"
#include "core/oracle.hpp"
#include "core/runner.hpp"
#include "core/ssm.hpp"
#include "matching/generators.hpp"

namespace bsm::core {
namespace {

using net::TopologyKind;

TEST(Stress, HeavyGarbageFloodAgainstEveryConstruction) {
  const std::vector<BsmConfig> cells = {
      {TopologyKind::FullyConnected, true, 4, 2, 2},
      {TopologyKind::FullyConnected, false, 4, 1, 1},
      {TopologyKind::OneSided, true, 4, 2, 1},
      {TopologyKind::OneSided, false, 4, 1, 1},
      {TopologyKind::Bipartite, true, 4, 3, 3},
      {TopologyKind::Bipartite, true, 4, 1, 4},  // Pi_bSM
      {TopologyKind::Bipartite, false, 4, 1, 1},
  };
  for (const auto& cfg : cells) {
    ASSERT_TRUE(solvable(cfg)) << cfg.describe();
    RunSpec spec;
    spec.config = cfg;
    spec.inputs = matching::random_profile(cfg.k, 1);
    // Flood with large malformed payloads from every budgeted corruption.
    for (std::uint32_t i = 0; i < cfg.tl; ++i) {
      spec.adversaries.push_back(
          {i, 0, std::make_unique<adversary::RandomNoise>(i + 1, 10, 500)});
    }
    for (std::uint32_t i = 0; i < cfg.tr; ++i) {
      spec.adversaries.push_back(
          {cfg.k + i, 0, std::make_unique<adversary::RandomNoise>(i + 77, 10, 500)});
    }
    const auto out = run_bsm(std::move(spec));
    EXPECT_TRUE(out.report.all()) << cfg.describe() << ": " << out.report.summary();
  }
}

TEST(Stress, ReplayersCannotBreakAuthenticatedRelays) {
  // Replaying recorded traffic must bounce off the (src, id) replay guard
  // and the Lemma 10 timing window.
  for (const auto topo : {TopologyKind::OneSided, TopologyKind::Bipartite}) {
    RunSpec spec;
    spec.config = BsmConfig{topo, true, 4, 1, 1};
    spec.inputs = matching::random_profile(4, 3);
    spec.adversaries.push_back({0, 0, std::make_unique<adversary::Replayer>()});
    spec.adversaries.push_back({5, 0, std::make_unique<adversary::Replayer>()});
    const auto out = run_bsm(std::move(spec));
    EXPECT_TRUE(out.report.all()) << net::to_string(topo) << ": " << out.report.summary();
  }
}

TEST(Stress, MixedBatteryAtFullBudget) {
  // One of each strategy, all inside the budget of a generous cell.
  RunSpec spec;
  spec.config = BsmConfig{TopologyKind::FullyConnected, true, 5, 3, 3};
  spec.inputs = matching::random_profile(5, 9);
  const auto lie = matching::contested_profile(5);
  spec.adversaries.push_back({0, 0, std::make_unique<adversary::Silent>()});
  spec.adversaries.push_back({1, 0, std::make_unique<adversary::RandomNoise>(4, 6)});
  spec.adversaries.push_back({2, 0, honest_process_for(spec, 2, lie.list(2))});
  spec.adversaries.push_back({5, 0, std::make_unique<adversary::Replayer>()});
  spec.adversaries.push_back(
      {6, 0,
       std::make_unique<adversary::SplitBrain>(honest_process_for(spec, 6, spec.inputs.list(6)),
                                               honest_process_for(spec, 6, lie.list(6)),
                                               [](PartyId p) { return static_cast<int>(p % 2); })});
  spec.adversaries.push_back({7, 3, std::make_unique<adversary::Silent>()});  // adaptive crash
  const auto out = run_bsm(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
}

TEST(Stress, AdaptiveCorruptionWave) {
  // Corruptions arriving at staggered rounds, up to the full budget: the
  // adaptive adversary of the paper's model.
  RunSpec spec;
  spec.config = BsmConfig{TopologyKind::FullyConnected, true, 4, 3, 3};
  spec.inputs = matching::random_profile(4, 13);
  Round when = 1;
  for (PartyId id : {0U, 1U, 2U, 4U, 5U, 6U}) {
    spec.adversaries.push_back({id, when, std::make_unique<adversary::Silent>()});
    when += 1;
  }
  const auto out = run_bsm(std::move(spec));
  EXPECT_TRUE(out.report.all()) << out.report.summary();
}

TEST(Stress, LargerMarketEndToEnd) {
  // k = 8 across the main constructions (kept to one seed for test speed).
  const std::vector<BsmConfig> cells = {
      {TopologyKind::FullyConnected, true, 8, 2, 2},
      {TopologyKind::FullyConnected, false, 8, 2, 2},
      {TopologyKind::Bipartite, true, 8, 2, 8},  // Pi_bSM at scale
  };
  for (const auto& cfg : cells) {
    RunSpec spec;
    spec.config = cfg;
    spec.inputs = matching::random_profile(cfg.k, 5);
    const auto expected = matching::gale_shapley(spec.inputs).matching;
    const auto out = run_bsm(std::move(spec));
    EXPECT_TRUE(out.report.all()) << cfg.describe() << ": " << out.report.summary();
    for (PartyId id = 0; id < cfg.n(); ++id) {
      EXPECT_EQ(out.decisions[id], std::optional<PartyId>{expected[id]}) << "P" << id;
    }
  }
}

TEST(Stress, SsmSweepWithAdversaries) {
  // Favorites-only inputs through the Lemma 2 runner across topologies.
  for (const auto topo :
       {TopologyKind::FullyConnected, TopologyKind::OneSided, TopologyKind::Bipartite}) {
    SsmRunSpec spec;
    spec.config = BsmConfig{topo, true, 4, 1, 1};
    spec.favorites = {5, 4, 6, 7, 1, 0, 2, 3};  // mutual: (1,4), (0,5), (2,6), (3,7)
    spec.adversaries.push_back({3, 0, std::make_unique<adversary::Silent>()});
    spec.adversaries.push_back({6, 0, std::make_unique<adversary::RandomNoise>(1, 3)});
    const auto out = run_ssm(std::move(spec));
    EXPECT_TRUE(out.report.all()) << net::to_string(topo) << ": " << out.report.summary();
    // The untouched mutual pairs must be matched.
    EXPECT_EQ(out.decisions[0], std::optional<PartyId>{5});
    EXPECT_EQ(out.decisions[1], std::optional<PartyId>{4});
  }
}

TEST(Stress, ZeroBudgetRunsAreExactAndCheap) {
  // tl = tr = 0: the protocol degenerates gracefully and still matches the
  // offline result.
  for (const bool auth : {true, false}) {
    RunSpec spec;
    spec.config = BsmConfig{TopologyKind::FullyConnected, auth, 5, 0, 0};
    spec.inputs = matching::random_profile(5, 30);
    const auto expected = matching::gale_shapley(spec.inputs).matching;
    const auto out = run_bsm(std::move(spec));
    EXPECT_TRUE(out.report.all());
    for (PartyId id = 0; id < 10; ++id) {
      EXPECT_EQ(out.decisions[id], std::optional<PartyId>{expected[id]});
    }
  }
}

}  // namespace
}  // namespace bsm::core
