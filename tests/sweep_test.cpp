// The sweep layer's two contracts:
//
//  1. Determinism — run_sweep() over a thread pool produces results
//     byte-identical to the serial fallback, cell for cell (same view
//     hashes, same PropertyReports, same traffic counters).
//  2. Traffic accounting — the batched mailbox engine's TrafficStats
//     per-round and per-channel counters are exact decompositions of the
//     aggregate totals, and inbox slices arrive ordered by sender.
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "net/engine.hpp"

namespace bsm::core {
namespace {

[[nodiscard]] std::vector<ScenarioSpec> determinism_grid() {
  SweepGrid grid;
  grid.topologies = {net::TopologyKind::FullyConnected, net::TopologyKind::OneSided};
  grid.auths = {true};
  grid.ks = {2, 3};
  grid.seeds = {1, 2};
  grid.batteries = {Battery::Silent, Battery::Liars};
  return grid.cells();
}

TEST(Sweep, SerialAndParallelResultsAreByteIdentical) {
  const auto cells = determinism_grid();
  ASSERT_GE(cells.size(), 64U) << "the acceptance grid must have at least 64 cells";

  const auto serial = run_sweep(cells, {.threads = 1});
  const auto parallel = run_sweep(cells, {.threads = 4});

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].solvable, parallel[i].solvable);
    ASSERT_EQ(serial[i].outcome.has_value(), parallel[i].outcome.has_value());
    if (!serial[i].outcome.has_value()) continue;
    const auto& s = *serial[i].outcome;
    const auto& p = *parallel[i].outcome;
    EXPECT_EQ(s.view_hashes, p.view_hashes) << cells[i].config.describe();
    EXPECT_EQ(s.report, p.report) << cells[i].config.describe();
    EXPECT_TRUE(s == p) << "full RunOutcome mismatch at " << cells[i].config.describe();
  }
}

TEST(Sweep, RepeatedParallelRunsAreStable) {
  // Same grid, two parallel executions: the schedule must not leak into
  // results.
  const auto cells = determinism_grid();
  const auto a = run_sweep(cells, {.threads = 4});
  const auto b = run_sweep(cells, {.threads = 4});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].outcome.has_value(), b[i].outcome.has_value());
    if (a[i].outcome.has_value()) EXPECT_TRUE(*a[i].outcome == *b[i].outcome);
  }
}

TEST(Sweep, UnsolvableCellsAreReportedNotRun) {
  SweepGrid grid;
  grid.topologies = {net::TopologyKind::FullyConnected};
  grid.auths = {false};
  grid.ks = {3};
  const auto results = run_sweep(grid.cells());
  bool saw_unsolvable = false;
  for (const auto& cell : results) {
    if (!cell.solvable) {
      saw_unsolvable = true;
      EXPECT_FALSE(cell.outcome.has_value());
      EXPECT_FALSE(cell.ok());
    }
  }
  EXPECT_TRUE(saw_unsolvable) << "unauthenticated k=3 must contain impossible cells";
}

/// A deliberately skewed grid, >= 128 cells: heavy large-k Liars cells
/// first (so static partitioning dumps them all on the first worker),
/// trivial k=2 cells after.
[[nodiscard]] std::vector<ScenarioSpec> skewed_grid() {
  SweepGrid heavy;
  heavy.auths = {true};
  heavy.ks = {5};
  heavy.tls = {1};
  heavy.trs = {1};
  heavy.batteries = {Battery::Liars};
  heavy.seeds.clear();
  for (std::uint64_t s = 1; s <= 16; ++s) heavy.seeds.push_back(s);
  auto cells = heavy.cells();

  SweepGrid light;
  light.auths = {true};
  light.ks = {2};
  light.tls = {1};
  light.trs = {1};
  light.batteries = {Battery::Silent, Battery::Noise, Battery::Liars,
                     Battery::AdaptiveCrash};
  light.seeds.clear();
  for (std::uint64_t s = 1; s <= 28; ++s) light.seeds.push_back(s);
  const auto trivial = light.cells();
  cells.insert(cells.end(), trivial.begin(), trivial.end());
  return cells;
}

TEST(Sweep, WorkStealingOnSkewedGridMatchesSerialByteForByte) {
  const auto cells = skewed_grid();
  ASSERT_GE(cells.size(), 128U) << "the skewed acceptance grid must have at least 128 cells";

  SweepStats serial_stats;
  SweepStats stealing_stats;
  SweepStats static_stats;
  const auto serial = run_sweep(cells, {.threads = 1}, &serial_stats);
  const auto stealing =
      run_sweep(cells, {.threads = 4, .schedule = Schedule::WorkStealing}, &stealing_stats);
  const auto fixed =
      run_sweep(cells, {.threads = 4, .schedule = Schedule::Static}, &static_stats);

  ASSERT_EQ(serial.size(), stealing.size());
  ASSERT_EQ(serial.size(), fixed.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].solvable, stealing[i].solvable);
    ASSERT_EQ(serial[i].outcome.has_value(), stealing[i].outcome.has_value());
    ASSERT_EQ(serial[i].outcome.has_value(), fixed[i].outcome.has_value());
    if (!serial[i].outcome.has_value()) continue;
    EXPECT_TRUE(*serial[i].outcome == *stealing[i].outcome)
        << "stealing diverged at " << cells[i].config.describe();
    EXPECT_TRUE(*serial[i].outcome == *fixed[i].outcome)
        << "static diverged at " << cells[i].config.describe();
  }

  // Schedule-shape accounting: the serial fallback is one chunk on the
  // calling thread; the stealing run deals multiple chunks per worker;
  // the static run deals exactly one partition per worker and never
  // steals. Steal counts are schedule-dependent (timing), so only their
  // invariants are asserted, never an exact value.
  EXPECT_EQ(serial_stats.threads, 1U);
  EXPECT_EQ(serial_stats.chunks, 1U);
  EXPECT_EQ(serial_stats.steals, 0U);
  EXPECT_EQ(stealing_stats.threads, 4U);
  EXPECT_GE(stealing_stats.chunks, 4U);
  EXPECT_LE(stealing_stats.steals, stealing_stats.chunks);
  EXPECT_EQ(static_stats.chunks, 4U);
  EXPECT_EQ(static_stats.steals, 0U);
  for (const auto* stats : {&serial_stats, &stealing_stats, &static_stats}) {
    EXPECT_EQ(stats->cells, cells.size());
    EXPECT_EQ(stats->oracle.lookups(), cells.size()) << "every cell consults the oracle once";
  }
  EXPECT_GT(stealing_stats.oracle.hits, 0U) << "seeds repeat settings, the cache must hit";
}

TEST(Sweep, TinyChunksForceStealsWithoutChangingResults) {
  // chunk_cells = 1 with a single heavy prefix maximizes steal pressure;
  // results must stay byte-identical to serial regardless.
  const auto cells = skewed_grid();
  const auto serial = run_sweep(cells, {.threads = 1});
  SweepStats stats;
  const auto stolen = run_sweep(cells, {.threads = 8, .chunk_cells = 1}, &stats);
  EXPECT_EQ(stats.chunks, cells.size());
  ASSERT_EQ(serial.size(), stolen.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].outcome.has_value(), stolen[i].outcome.has_value());
    if (serial[i].outcome.has_value()) {
      EXPECT_TRUE(*serial[i].outcome == *stolen[i].outcome);
    }
  }
}

TEST(Sweep, RunCellsHonorsStaticSchedule) {
  std::vector<int> cells(257);
  for (int i = 0; i < 257; ++i) cells[i] = i;
  const auto tripled = run_cells(
      cells, [](const int& x) { return 3 * x; },
      {.threads = 4, .schedule = Schedule::Static});
  for (int i = 0; i < 257; ++i) EXPECT_EQ(tripled[i], 3 * i);
}

TEST(Sweep, RunCellsPreservesInputOrder) {
  std::vector<int> cells(100);
  for (int i = 0; i < 100; ++i) cells[i] = i;
  const auto doubled =
      run_cells(cells, [](const int& x) { return 2 * x; }, {.threads = 8});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(doubled[i], 2 * i);
}

TEST(Sweep, CellExceptionsPropagateToCaller) {
  std::vector<int> cells{1, 2, 3, 4};
  EXPECT_THROW((void)run_cells(
                   cells,
                   [](const int& x) {
                     if (x == 3) throw std::runtime_error("boom");
                     return x;
                   },
                   {.threads = 2}),
               std::runtime_error);
}

/// Sends one fixed-size message to `peer` every round.
class Pinger final : public net::Process {
 public:
  explicit Pinger(PartyId peer) : peer_(peer) {}
  void on_round(net::Context& ctx, net::Inbox) override { ctx.send(peer_, Bytes{1, 2, 3}); }

 private:
  PartyId peer_;
};

/// Records the sender sequence of every inbox it receives.
class SenderRecorder final : public net::Process {
 public:
  void on_round(net::Context&, net::Inbox inbox) override {
    for (const auto& env : inbox) senders.push_back(env.from);
  }
  std::vector<PartyId> senders;
};

TEST(TrafficStats, PerRoundAndPerChannelCountersDecomposeTotals) {
  const std::uint32_t k = 2;  // parties 0,1 (L) and 2,3 (R), fully connected
  net::Engine engine(net::Topology(net::TopologyKind::FullyConnected, k), 1);
  engine.set_process(0, std::make_unique<Pinger>(2));
  engine.set_process(1, std::make_unique<Pinger>(2));
  engine.set_process(2, std::make_unique<SenderRecorder>());
  const Round rounds = 5;
  engine.run(rounds);

  const auto& stats = engine.stats();
  EXPECT_EQ(stats.messages, 2U * rounds);
  EXPECT_EQ(stats.bytes, 2U * rounds * 3);

  // Per-round counters decompose the totals exactly.
  std::uint64_t round_messages = 0;
  std::uint64_t round_bytes = 0;
  for (Round r = 0; r < rounds; ++r) {
    EXPECT_EQ(stats.round(r).messages, 2U);
    EXPECT_EQ(stats.round(r).bytes, 6U);
    round_messages += stats.round(r).messages;
    round_bytes += stats.round(r).bytes;
  }
  EXPECT_EQ(round_messages, stats.messages);
  EXPECT_EQ(round_bytes, stats.bytes);
  EXPECT_EQ(stats.round(rounds + 7).messages, 0U) << "rounds past the run are zero";

  // Per-channel counters decompose the totals exactly.
  std::uint64_t channel_messages = 0;
  std::uint64_t channel_bytes = 0;
  for (PartyId from = 0; from < 2 * k; ++from) {
    for (PartyId to = 0; to < 2 * k; ++to) {
      channel_messages += stats.channel(from, to).messages;
      channel_bytes += stats.channel(from, to).bytes;
    }
  }
  EXPECT_EQ(channel_messages, stats.messages);
  EXPECT_EQ(channel_bytes, stats.bytes);

  // And individual channels carry exactly their own traffic.
  EXPECT_EQ(stats.channel(0, 2).messages, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(stats.channel(0, 2).bytes, static_cast<std::uint64_t>(rounds) * 3);
  EXPECT_EQ(stats.channel(1, 2), stats.channel(0, 2));
  EXPECT_EQ(stats.channel(2, 0).messages, 0U);
}

TEST(TrafficStats, SweepOutcomesCarryChannelCounters) {
  SweepGrid grid;
  grid.ks = {3};
  grid.tls = {1};
  grid.trs = {1};
  const auto results = run_sweep(grid.cells());
  ASSERT_FALSE(results.empty());
  for (const auto& cell : results) {
    if (!cell.outcome.has_value()) continue;
    const auto& traffic = cell.outcome->traffic;
    ASSERT_EQ(traffic.n, cell.scenario.config.n());
    std::uint64_t sum = 0;
    for (const auto& counter : traffic.per_channel) sum += counter.messages;
    EXPECT_EQ(sum, traffic.messages);
    std::uint64_t round_sum = 0;
    for (const auto& counter : traffic.per_round) round_sum += counter.bytes;
    EXPECT_EQ(round_sum, traffic.bytes);
  }
}

TEST(Mailbox, InboxSlicesArriveOrderedBySender) {
  // Senders installed in descending id order still deliver ascending.
  const std::uint32_t k = 2;
  net::Engine engine(net::Topology(net::TopologyKind::FullyConnected, k), 1);
  engine.set_process(3, std::make_unique<Pinger>(0));
  engine.set_process(2, std::make_unique<Pinger>(0));
  engine.set_process(1, std::make_unique<Pinger>(0));
  engine.set_process(0, std::make_unique<SenderRecorder>());
  engine.run(3);  // deliveries happen in rounds 1 and 2

  const auto& recorder = engine.process_as<SenderRecorder>(0);
  const std::vector<PartyId> expected{1, 2, 3, 1, 2, 3};
  EXPECT_EQ(recorder.senders, expected);
}

}  // namespace
}  // namespace bsm::core
