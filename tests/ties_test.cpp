// Tests for stable matching with ties under weak stability.
#include <gtest/gtest.h>

#include "matching/stability.hpp"
#include "matching/ties.hpp"

namespace bsm::matching {
namespace {

TiedProfile indifferent(std::uint32_t k) {
  // Everyone is indifferent among the whole opposite side.
  TiedProfile p(k);
  for (PartyId id = 0; id < 2 * k; ++id) {
    p.set(id, {side_members(opposite(side_of(id, k)), k)});
  }
  return p;
}

TEST(Ties, SetValidatesTiers) {
  TiedProfile p(2);
  EXPECT_NO_THROW(p.set(0, {{2, 3}}));
  EXPECT_NO_THROW(p.set(0, {{3}, {2}}));
  EXPECT_THROW(p.set(0, {{2}}), std::logic_error);          // incomplete
  EXPECT_THROW(p.set(0, {{2}, {2, 3}}), std::logic_error);  // duplicate
  EXPECT_THROW(p.set(0, {{0, 1}}), std::logic_error);       // own side
  EXPECT_THROW(p.set(0, {{2}, {}, {3}}), std::logic_error); // empty tier
}

TEST(Ties, TierLookupAndStrictPreference) {
  TiedProfile p(3);
  p.set(0, {{4}, {3, 5}});
  EXPECT_EQ(p.tier_of(0, 4), 0U);
  EXPECT_EQ(p.tier_of(0, 3), 1U);
  EXPECT_EQ(p.tier_of(0, 5), 1U);
  EXPECT_TRUE(p.strictly_prefers(0, 4, 3));
  EXPECT_FALSE(p.strictly_prefers(0, 3, 5));  // same tier: indifferent
  EXPECT_FALSE(p.strictly_prefers(0, 5, 3));
}

TEST(Ties, BreakTiesIsDeterministicAndOrderPreserving) {
  TiedProfile p(3);
  p.set(0, {{5, 3}, {4}});
  for (PartyId id = 1; id < 6; ++id) {
    p.set(id, {side_members(opposite(side_of(id, 3)), 3)});
  }
  const auto strict = break_ties(p);
  EXPECT_EQ(strict.list(0), (PreferenceList{3, 5, 4}));  // tier sorted by id
  // Deterministic: two calls agree.
  EXPECT_EQ(break_ties(p).list(0), strict.list(0));
}

TEST(Ties, TotalIndifferenceAnyPerfectMatchingIsWeaklyStable) {
  const auto p = indifferent(3);
  // With full indifference nobody strictly prefers anything: every perfect
  // matching is weakly stable.
  const Matching m{5, 3, 4, 1, 2, 0};
  EXPECT_TRUE(is_weakly_stable(p, m));
  const auto result = stable_matching_with_ties(p);
  EXPECT_TRUE(is_weakly_stable(p, result.matching));
}

TEST(Ties, StrictProfileReducesToClassicStability) {
  // Singleton tiers: weak stability coincides with classic stability.
  TiedProfile p(2);
  p.set(0, {{2}, {3}});
  p.set(1, {{2}, {3}});
  p.set(2, {{0}, {1}});
  p.set(3, {{0}, {1}});
  const auto result = stable_matching_with_ties(p);
  EXPECT_EQ(result.matching[0], 2U);
  EXPECT_EQ(result.matching[1], 3U);
  // 0-3/1-2 has the weakly blocking pair (0, 2).
  EXPECT_FALSE(is_weakly_stable(p, {3, 2, 1, 0}));
}

class TiesRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TiesRandom, TieBrokenGaleShapleyIsWeaklyStable) {
  for (const std::uint32_t k : {2U, 3U, 5U}) {
    for (const std::uint32_t mean_tier : {1U, 2U, 3U}) {
      const auto p = random_tied_profile(k, mean_tier, GetParam() * 37 + k + mean_tier);
      ASSERT_TRUE(p.complete());
      const auto result = stable_matching_with_ties(p);
      EXPECT_TRUE(is_perfect_matching(result.matching, k));
      EXPECT_TRUE(weakly_blocking_pairs(p, result.matching).empty())
          << "k=" << k << " tier=" << mean_tier << " seed=" << GetParam();
    }
  }
}

TEST_P(TiesRandom, StrictStabilityImpliesWeakStability) {
  // Any matching stable for the tie-broken strict profile is weakly stable
  // for the tied one (the classic existence argument).
  const auto p = random_tied_profile(3, 2, GetParam() + 500);
  const auto strict = break_ties(p);
  for (const auto& m : all_stable_matchings(strict)) {
    EXPECT_TRUE(is_weakly_stable(p, m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiesRandom, ::testing::Range<std::uint64_t>(0, 20));

TEST(Ties, MeanTierOneIsStrict) {
  const auto p = random_tied_profile(4, 1, 9);
  for (PartyId id = 0; id < 8; ++id) {
    for (const auto& tier : p.tiers(id)) EXPECT_EQ(tier.size(), 1U);
  }
}

}  // namespace
}  // namespace bsm::matching
