// bsm_cli — run any byzantine-stable-matching scenario from the command
// line and inspect the outcome, sweep whole scenario grids in parallel,
// or run the registered benchmark suite.
//
// Subcommands (see usage() or `bsm_cli --help` for every flag):
//   bsm_cli [run] [flags]    one scenario, human-readable outcome table
//   bsm_cli sweep [flags]    a cartesian scenario grid via run_sweep(),
//                            one machine-readable JSON document on stdout
//   bsm_cli explore [flags]  systematic delivery-schedule search (sched::explore)
//   bsm_cli fuzz [flags]     coverage-guided schedule fuzzing (sched::Fuzzer)
//   bsm_cli bench [flags]    the full benchmark suite (every bench/ case
//                            group) via the shared harness; emits the
//                            BENCH_results.json schema on stdout
//
// Adversaries are assigned to the highest-budget ids per side, one flag per
// corrupted party, alternating L then R while budget remains. Exits 0 when
// all four bSM properties held; 2 when the setting is unsolvable per the
// paper (or on a usage error); 1 on a property violation (which inside the
// solvable region would be a library bug — please report it).
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "adversary/shims.hpp"
#include "adversary/strategies.hpp"
#include "cases/cases.hpp"
#include "common/codec.hpp"
#include "common/table.hpp"
#include "core/bench.hpp"
#include "core/oracle.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "matching/generators.hpp"
#include "sched/explorer.hpp"
#include "sched/fuzz.hpp"

namespace {

using namespace bsm;

void usage() {
  std::cout <<
      R"(bsm_cli — byzantine stable matching toolkit

usage:
  bsm_cli [run] [flags]     run one scenario, print the outcome table
  bsm_cli sweep [flags]     run a scenario grid in parallel, emit JSON on stdout
  bsm_cli explore [flags]   systematic delivery-schedule search, emit JSON on stdout
  bsm_cli fuzz [flags]      coverage-guided schedule fuzzing, emit JSON on stdout
  bsm_cli bench [flags]     run the benchmark suite, emit BENCH_results.json on stdout
  bsm_cli --help            this text (also: bsm_cli SUBCOMMAND --help)

run flags (exit 0 = all four bSM properties held, 1 = violation,
2 = unsolvable setting or usage error):
  --topology fully|one-sided|bipartite   network topology  (default: fully)
  --auth / --no-auth                     PKI available?    (default: auth)
  --k N                                  parties per side  (default: 4)
  --tl N / --tr N                        corruption budgets (default: 1/1)
  --seed S                               workload seed     (default: 1)
  --adversary KIND                       add one corrupted party, kinds:
                                         silent noise liar split crash
  --verbose                              print preference lists too

sweep flags (enumerates the cartesian grid over every axis below, runs
each cell on a work-stealing thread pool, and prints one JSON document:
per-cell topology/auth/k/tl/tr/seed, solvability, protocol, rounds,
messages, bytes, and the four property verdicts, plus aggregate totals,
the scheduler shape (threads/chunks/steals), and the oracle-cache
counters (hits/misses/inserts/hit_rate); exit 0 iff every solvable cell
held all four properties):
  --topology LIST      comma list of fully,one-sided,bipartite (default all)
  --auth both|on|off   authentication axis             (default: both)
  --k LIST             comma list of market sizes      (default: 3)
  --tl LIST / --tr LIST  comma lists of budgets        (default: 0..k)
  --seeds N            workload seeds 1..N             (default: 2)
  --battery LIST       comma list of silent,noise,liars,adaptive,omission
                       (default: all but omission)
  --sched KIND         delivery schedule per cell: sync,delay,omit (default: sync;
                       delay/omit perturb only corrupt-adjacent channels)
  --sched-seeds N      fan each setting out over N schedule seeds  (default: 1)
  --threads N          worker threads, 0 = hardware    (default: 0)
  --schedule stealing|static  cell scheduler           (default: stealing)

explore flags (bounded iterative-deepening search over per-round delivery
perturbations — drop/delay/reorder of channel-round groups — of one
scenario, pruned by per-round view-hash state digests; prints one JSON
document with schedules explored/pruned, violations, and a minimized
counterexample trace when one exists; exit 0 = every explored schedule
satisfied all four properties, 1 = violation found, 2 = usage error or
unsolvable setting):
  --topology fully|one-sided|bipartite   topology       (default: fully)
  --auth / --no-auth                     PKI available? (default: auth)
  --k N / --tl N / --tr N    market size and budgets    (default: 2/1/0)
  --seed S                   workload seed              (default: 1)
  --battery KIND             silent,noise,liars,adaptive,omission (default: silent)
  --max-depth N              max perturbation ops per schedule (default: 2)
  --max-delay N              delay ops slip 1..N rounds (default: 1)
  --horizon N                rounds to simulate, 0 = protocol deadline (default: 0)
  --ops LIST                 comma list of drop,delay,reorder (default: drop,delay)
  --include-honest           also perturb honest-honest channels (beyond the
                             fault envelope; violations become expected)
  --max-schedules N          cap on exploration runs    (default: 4096)
  --threads N                per-wave fan-out, 0 = hardware (default: 0)
  --replay TRACE             skip the search: replay one serialized schedule
                             trace and report its outcome

fuzz flags (coverage-guided greybox loop over the same schedule space as
explore: a corpus of interesting traces — ones that reached a new
per-round view-hash trail prefix — is mutated inside the fault envelope,
parents picked by coverage energy; prints one JSON document with
execs/corpus/coverage/violations and a 1-minimal counterexample trace
when one exists; same seed = bit-identical report at any thread count;
exit 0 = no violation found, 1 = violation found, 2 = usage error or
unsolvable setting):
  --topology fully|one-sided|bipartite   topology       (default: fully)
  --auth / --no-auth                     PKI available? (default: auth)
  --k N / --tl N / --tr N    market size and budgets    (default: 2/1/0)
  --seed S                   workload seed              (default: 1)
  --battery KIND             silent,noise,liars,adaptive,omission (default: silent)
  --fuzz-seed S              mutation/selection rng seed (default: 1)
  --max-execs N              total simulation budget    (default: 2048)
  --batch N                  candidates per parallel wave (default: 32)
  --max-ops N                op cap per mutated trace   (default: 8)
  --ops LIST                 comma list of drop,delay,reorder (default: drop,delay)
  --max-delay N              delay ops slip 1..N rounds (default: 2)
  --omission-budget N        max drops charged to one target (default: 4)
  --horizon N                rounds to simulate, 0 = protocol deadline (default: 0)
  --include-honest           also mutate honest-honest channels (beyond the
                             fault envelope; violations become expected)
  --corpus DIR               load seed traces from DIR before fuzzing and
                             save the final corpus back (digest-keyed files)
  --threads N                per-wave fan-out, 0 = hardware (default: 0)
  --replay TRACE             skip the fuzzing: replay one serialized schedule
                             trace and report its outcome

bench flags (runs every registered benchmark case group — the same cases
the bench/ binaries run — and prints the versioned BENCH_results.json
schema, documented in docs/BENCHMARKS.md, on stdout; exit 0 iff every
case was ok and deterministic):
  --threads N          worker threads for parallel cases (default: 0 = hardware)
  --repeats N          override every case's repeat count
  --filter REGEX       run only cases whose name matches
  --json PATH|-        write the JSON to PATH instead of stdout
  --list               print registered case names and exit
)";
}

// ------------------------------------------------------------- sweep mode

[[nodiscard]] std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

[[nodiscard]] std::optional<core::Battery> parse_battery(const std::string& name) {
  if (name == "silent") return core::Battery::Silent;
  if (name == "noise") return core::Battery::Noise;
  if (name == "liars") return core::Battery::Liars;
  if (name == "adaptive") return core::Battery::AdaptiveCrash;
  if (name == "omission") return core::Battery::Omission;
  return std::nullopt;
}

[[nodiscard]] const char* battery_name(core::Battery battery) {
  switch (battery) {
    case core::Battery::Silent:
      return "silent";
    case core::Battery::Noise:
      return "noise";
    case core::Battery::Liars:
      return "liars";
    case core::Battery::AdaptiveCrash:
      return "adaptive";
    case core::Battery::Omission:
      return "omission";
  }
  return "?";
}

int run_sweep_command(int argc, char** argv) {
  core::SweepGrid grid;
  grid.topologies = {net::TopologyKind::FullyConnected, net::TopologyKind::OneSided,
                     net::TopologyKind::Bipartite};
  grid.auths = {false, true};
  grid.ks = {3};
  grid.batteries = {core::Battery::Silent, core::Battery::Noise, core::Battery::Liars,
                    core::Battery::AdaptiveCrash};
  std::uint64_t num_seeds = 2;
  std::uint64_t sched_seeds = 1;
  sched::PolicyDesc sched_base;
  core::SweepOptions opts;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help") {
      usage();
      return 0;
    }
    if (arg != "--topology" && arg != "--auth" && arg != "--k" && arg != "--tl" &&
        arg != "--tr" && arg != "--seeds" && arg != "--battery" && arg != "--threads" &&
        arg != "--schedule" && arg != "--sched" && arg != "--sched-seeds") {
      std::cerr << "unknown sweep argument: " << arg << " (try --help)\n";
      return 2;
    }
    const auto value = next();
    if (!value) {
      std::cerr << "missing value for " << arg << "\n";
      return 2;
    }
    if (arg == "--topology") {
      grid.topologies.clear();
      for (const auto& t : split_csv(*value)) {
        if (t == "fully") {
          grid.topologies.push_back(net::TopologyKind::FullyConnected);
        } else if (t == "one-sided") {
          grid.topologies.push_back(net::TopologyKind::OneSided);
        } else if (t == "bipartite") {
          grid.topologies.push_back(net::TopologyKind::Bipartite);
        } else {
          std::cerr << "unknown topology: " << t << "\n";
          return 2;
        }
      }
    } else if (arg == "--auth") {
      if (*value == "both") {
        grid.auths = {false, true};
      } else if (*value == "on") {
        grid.auths = {true};
      } else if (*value == "off") {
        grid.auths = {false};
      } else {
        std::cerr << "unknown --auth value: " << *value << "\n";
        return 2;
      }
    } else if (arg == "--k" || arg == "--tl" || arg == "--tr") {
      std::vector<std::uint32_t> values;
      for (const auto& v : split_csv(*value)) {
        const auto parsed = parse_u64(v);
        if (!parsed || *parsed > 64) {
          std::cerr << "bad " << arg << " value: " << v << " (expected 0..64)\n";
          return 2;
        }
        values.push_back(static_cast<std::uint32_t>(*parsed));
      }
      if (arg == "--k") grid.ks = values;
      if (arg == "--tl") grid.tls = values;
      if (arg == "--tr") grid.trs = values;
    } else if (arg == "--seeds") {
      const auto parsed = parse_u64(*value);
      if (!parsed || *parsed == 0 || *parsed > 10000) {
        std::cerr << "bad --seeds value: " << *value << " (expected 1..10000)\n";
        return 2;
      }
      num_seeds = *parsed;
    } else if (arg == "--battery") {
      grid.batteries.clear();
      for (const auto& b : split_csv(*value)) {
        const auto battery = parse_battery(b);
        if (!battery) {
          std::cerr << "unknown battery: " << b << "\n";
          return 2;
        }
        grid.batteries.push_back(*battery);
      }
    } else if (arg == "--sched") {
      if (*value == "sync") {
        sched_base.kind = sched::PolicyDesc::Kind::Synchronous;
      } else if (*value == "delay") {
        sched_base.kind = sched::PolicyDesc::Kind::RandomDelay;
      } else if (*value == "omit") {
        sched_base.kind = sched::PolicyDesc::Kind::TargetedOmission;
      } else {
        std::cerr << "unknown --sched value: " << *value << " (sync|delay|omit)\n";
        return 2;
      }
    } else if (arg == "--sched-seeds") {
      const auto parsed = parse_u64(*value);
      if (!parsed || *parsed == 0 || *parsed > 10000) {
        std::cerr << "bad --sched-seeds value: " << *value << " (expected 1..10000)\n";
        return 2;
      }
      sched_seeds = *parsed;
    } else if (arg == "--schedule") {
      if (*value == "stealing") {
        opts.schedule = core::Schedule::WorkStealing;
      } else if (*value == "static") {
        opts.schedule = core::Schedule::Static;
      } else {
        std::cerr << "unknown --schedule value: " << *value << " (stealing|static)\n";
        return 2;
      }
    } else {  // --threads, the only flag left after the known-flag gate above
      const auto parsed = parse_u64(*value);
      if (!parsed || *parsed > 1024) {
        std::cerr << "bad --threads value: " << *value << " (expected 0..1024)\n";
        return 2;
      }
      opts.threads = static_cast<unsigned>(*parsed);
    }
  }
  grid.seeds.clear();
  for (std::uint64_t s = 1; s <= num_seeds; ++s) grid.seeds.push_back(s);
  grid.scheds = core::schedule_axis(sched_base, sched_seeds);

  core::SweepStats stats;
  const auto results = core::run_sweep(grid.cells(), opts, &stats);

  bool all_ok = true;
  std::size_t ran = 0;
  std::cout << "{\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& cell = results[i];
    const auto& cfg = cell.scenario.config;
    std::cout << "    {\"topology\": \"" << json_escape(net::to_string(cfg.topology))
              << "\", \"auth\": " << (cfg.authenticated ? "true" : "false")
              << ", \"k\": " << cfg.k << ", \"tl\": " << cfg.tl << ", \"tr\": " << cfg.tr
              << ", \"input_seed\": " << cell.scenario.input_seed
              << ", \"adversaries\": " << cell.scenario.adversaries.size()
              << ", \"solvable\": " << (cell.solvable ? "true" : "false");
    if (!cell.scenario.sched.is_synchronous()) {
      const char* kind =
          cell.scenario.sched.kind == sched::PolicyDesc::Kind::RandomDelay ? "delay" : "omit";
      std::cout << ", \"sched\": \"" << kind << "\", \"sched_seed\": " << cell.scenario.sched.seed;
    }
    if (cell.outcome.has_value()) {
      ++ran;
      const auto& out = *cell.outcome;
      all_ok &= out.report.all();
      std::cout << ", \"protocol\": \"" << json_escape(out.spec.describe())
                << "\", \"rounds\": " << out.rounds << ", \"messages\": " << out.traffic.messages
                << ", \"bytes\": " << out.traffic.bytes << ", \"properties\": {\"termination\": "
                << (out.report.termination ? "true" : "false")
                << ", \"symmetry\": " << (out.report.symmetry ? "true" : "false")
                << ", \"stability\": " << (out.report.stability ? "true" : "false")
                << ", \"non_competition\": " << (out.report.non_competition ? "true" : "false")
                << "}, \"all_properties\": " << (out.report.all() ? "true" : "false");
    }
    std::cout << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::ostringstream hit_rate;
  hit_rate << stats.oracle.hit_rate();
  std::cout << "  ],\n  \"total_cells\": " << results.size() << ",\n  \"ran\": " << ran
            << ",\n  \"scheduler\": {\"threads\": " << stats.threads
            << ", \"chunks\": " << stats.chunks << ", \"steals\": " << stats.steals
            << "},\n  \"oracle_cache\": {\"hits\": " << stats.oracle.hits
            << ", \"misses\": " << stats.oracle.misses << ", \"inserts\": " << stats.oracle.inserts
            << ", \"hit_rate\": " << hit_rate.str()
            << "},\n  \"all_properties_held\": " << (all_ok ? "true" : "false") << "\n}\n";
  return all_ok ? 0 : 1;
}

// ----------------------------------------------------------- explore mode

[[nodiscard]] std::string views_json(const std::vector<std::uint64_t>& views) {
  std::string out = "[";
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(views[i]);
  }
  return out + "]";
}

/// Shared by `explore --replay` and `fuzz --replay`: run one serialized
/// trace under the scenario and print the replay JSON document. The
/// output depends only on (scenario, horizon, trace), so a
/// counterexample replays bit-for-bit from either subcommand.
int run_replay(core::ScenarioSpec scenario, Round horizon, const std::string& serialized) {
  const auto trace = sched::ScheduleTrace::parse(serialized);
  if (!trace) {
    std::cerr << "bad --replay trace: " << serialized << "\n";
    return 2;
  }
  scenario.sched.kind = sched::PolicyDesc::Kind::Scripted;
  scenario.sched.trace = *trace;
  // Honor --horizon exactly like the search does (horizon 0 = the
  // protocol deadline), so a counterexample found under a truncated
  // horizon reproduces on replay.
  auto run = core::assemble_run(core::to_run_spec(scenario));
  run.engine.run(horizon == 0 ? run.rounds : horizon);
  const core::RunOutcome out = core::collect_outcome(run);
  std::cout << "{\n  \"replay\": {\"trace\": \"" << json_escape(trace->serialize())
            << "\", \"ops\": " << trace->ops.size() << ", \"rounds\": " << out.rounds
            << ", \"messages\": " << out.traffic.messages
            << ", \"delivered\": " << out.traffic.delivered_messages
            << ", \"dropped\": " << out.traffic.dropped_messages
            << ", \"all_properties\": " << (out.report.all() ? "true" : "false")
            << ",\n    \"views\": " << views_json(out.view_hashes) << "}\n}\n";
  return out.report.all() ? 0 : 1;
}

int run_explore_command(int argc, char** argv) {
  core::ScenarioSpec scenario;
  scenario.config = core::BsmConfig{net::TopologyKind::FullyConnected, true, 2, 1, 0};
  std::uint64_t seed = 1;
  core::Battery battery = core::Battery::Silent;
  sched::ExplorerOptions opts;
  std::optional<std::string> replay;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help") {
      usage();
      return 0;
    }
    if (arg == "--auth") {
      scenario.config.authenticated = true;
      continue;
    }
    if (arg == "--no-auth") {
      scenario.config.authenticated = false;
      continue;
    }
    if (arg == "--include-honest") {
      opts.corrupt_adjacent_only = false;
      continue;
    }
    if (arg != "--topology" && arg != "--k" && arg != "--tl" && arg != "--tr" &&
        arg != "--seed" && arg != "--battery" && arg != "--max-depth" && arg != "--max-delay" &&
        arg != "--horizon" && arg != "--ops" && arg != "--max-schedules" && arg != "--threads" &&
        arg != "--replay") {
      std::cerr << "unknown explore argument: " << arg << " (try --help)\n";
      return 2;
    }
    const auto value = next();
    if (!value) {
      std::cerr << "missing value for " << arg << "\n";
      return 2;
    }
    if (arg == "--topology") {
      if (*value == "fully") {
        scenario.config.topology = net::TopologyKind::FullyConnected;
      } else if (*value == "one-sided") {
        scenario.config.topology = net::TopologyKind::OneSided;
      } else if (*value == "bipartite") {
        scenario.config.topology = net::TopologyKind::Bipartite;
      } else {
        std::cerr << "unknown topology: " << *value << "\n";
        return 2;
      }
    } else if (arg == "--battery") {
      const auto parsed = parse_battery(*value);
      if (!parsed) {
        std::cerr << "unknown battery: " << *value << "\n";
        return 2;
      }
      battery = *parsed;
    } else if (arg == "--ops") {
      opts.allow_drop = opts.allow_delay = opts.allow_reorder = false;
      for (const auto& op : split_csv(*value)) {
        if (op == "drop") {
          opts.allow_drop = true;
        } else if (op == "delay") {
          opts.allow_delay = true;
        } else if (op == "reorder") {
          opts.allow_reorder = true;
        } else {
          std::cerr << "unknown --ops value: " << op << " (drop|delay|reorder)\n";
          return 2;
        }
      }
    } else if (arg == "--replay") {
      replay = *value;
    } else {
      const auto parsed = parse_u64(*value);
      if (!parsed || *parsed > 1'000'000) {
        std::cerr << "bad " << arg << " value: " << *value << " (expected 0..1000000)\n";
        return 2;
      }
      const auto v = static_cast<std::uint32_t>(*parsed);
      if (arg == "--k") scenario.config.k = v;
      if (arg == "--tl") scenario.config.tl = v;
      if (arg == "--tr") scenario.config.tr = v;
      if (arg == "--seed") seed = v;
      if (arg == "--max-depth") opts.max_depth = v;
      if (arg == "--max-delay") opts.max_delay = v;
      if (arg == "--horizon") opts.horizon = v;
      if (arg == "--max-schedules") opts.max_schedules = v;
      if (arg == "--threads") opts.threads = static_cast<unsigned>(v);
    }
  }

  if (!core::solvable(scenario.config)) {
    std::cerr << "unsolvable setting: " << core::solvability_reason(scenario.config) << "\n";
    return 2;
  }
  scenario.input_seed = seed;
  scenario.pki_seed = seed + 1;
  core::apply_battery(scenario, battery, seed);

  if (replay.has_value()) return run_replay(scenario, opts.horizon, *replay);

  const auto report = sched::explore(scenario, opts);

  std::cout << "{\n  \"scenario\": {\"topology\": \""
            << json_escape(net::to_string(scenario.config.topology))
            << "\", \"auth\": " << (scenario.config.authenticated ? "true" : "false")
            << ", \"k\": " << scenario.config.k << ", \"tl\": " << scenario.config.tl
            << ", \"tr\": " << scenario.config.tr << ", \"seed\": " << seed << ", \"battery\": \""
            << battery_name(battery) << "\", \"adversaries\": " << scenario.adversaries.size()
            << "},\n";
  std::cout << "  \"options\": {\"max_depth\": " << opts.max_depth
            << ", \"max_delay\": " << opts.max_delay << ", \"horizon\": " << opts.horizon
            << ", \"drop\": " << (opts.allow_drop ? "true" : "false")
            << ", \"delay\": " << (opts.allow_delay ? "true" : "false")
            << ", \"reorder\": " << (opts.allow_reorder ? "true" : "false")
            << ", \"corrupt_adjacent_only\": " << (opts.corrupt_adjacent_only ? "true" : "false")
            << ", \"max_schedules\": " << opts.max_schedules << "},\n";
  std::cout << "  \"schedules\": {\"explored\": " << report.explored
            << ", \"pruned\": " << report.pruned << ", \"violations\": " << report.violations
            << ", \"depth_reached\": " << report.depth_reached
            << ", \"truncated\": " << (report.truncated ? "true" : "false") << "},\n";
  std::cout << "  \"all_satisfied\": " << (report.all_satisfied() ? "true" : "false") << ",\n";
  if (report.counterexample.has_value()) {
    std::cout << "  \"counterexample\": {\"trace\": \""
              << json_escape(report.counterexample->serialize())
              << "\", \"ops\": " << report.counterexample->ops.size()
              << ", \"shrink_runs\": " << report.shrink_runs
              << ",\n    \"views\": " << views_json(report.counterexample_views) << "}\n";
  } else {
    std::cout << "  \"counterexample\": null\n";
  }
  std::cout << "}\n";
  return report.all_satisfied() ? 0 : 1;
}

// -------------------------------------------------------------- fuzz mode

int run_fuzz_command(int argc, char** argv) {
  core::ScenarioSpec scenario;
  scenario.config = core::BsmConfig{net::TopologyKind::FullyConnected, true, 2, 1, 0};
  std::uint64_t seed = 1;
  core::Battery battery = core::Battery::Silent;
  sched::FuzzerOptions opts;
  opts.allow_reorder = false;  // match explore's default op menu: drop,delay
  std::optional<std::string> replay;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help") {
      usage();
      return 0;
    }
    if (arg == "--auth") {
      scenario.config.authenticated = true;
      continue;
    }
    if (arg == "--no-auth") {
      scenario.config.authenticated = false;
      continue;
    }
    if (arg == "--include-honest") {
      opts.corrupt_adjacent_only = false;
      continue;
    }
    if (arg != "--topology" && arg != "--k" && arg != "--tl" && arg != "--tr" &&
        arg != "--seed" && arg != "--battery" && arg != "--fuzz-seed" && arg != "--max-execs" &&
        arg != "--batch" && arg != "--max-ops" && arg != "--ops" && arg != "--max-delay" &&
        arg != "--omission-budget" && arg != "--horizon" && arg != "--corpus" &&
        arg != "--threads" && arg != "--replay") {
      std::cerr << "unknown fuzz argument: " << arg << " (try --help)\n";
      return 2;
    }
    const auto value = next();
    if (!value) {
      std::cerr << "missing value for " << arg << "\n";
      return 2;
    }
    if (arg == "--topology") {
      if (*value == "fully") {
        scenario.config.topology = net::TopologyKind::FullyConnected;
      } else if (*value == "one-sided") {
        scenario.config.topology = net::TopologyKind::OneSided;
      } else if (*value == "bipartite") {
        scenario.config.topology = net::TopologyKind::Bipartite;
      } else {
        std::cerr << "unknown topology: " << *value << "\n";
        return 2;
      }
    } else if (arg == "--battery") {
      const auto parsed = parse_battery(*value);
      if (!parsed) {
        std::cerr << "unknown battery: " << *value << "\n";
        return 2;
      }
      battery = *parsed;
    } else if (arg == "--ops") {
      opts.allow_drop = opts.allow_delay = opts.allow_reorder = false;
      for (const auto& op : split_csv(*value)) {
        if (op == "drop") {
          opts.allow_drop = true;
        } else if (op == "delay") {
          opts.allow_delay = true;
        } else if (op == "reorder") {
          opts.allow_reorder = true;
        } else {
          std::cerr << "unknown --ops value: " << op << " (drop|delay|reorder)\n";
          return 2;
        }
      }
    } else if (arg == "--corpus") {
      opts.corpus_dir = *value;
    } else if (arg == "--replay") {
      replay = *value;
    } else {
      const auto parsed = parse_u64(*value);
      if (!parsed || *parsed > 1'000'000) {
        std::cerr << "bad " << arg << " value: " << *value << " (expected 0..1000000)\n";
        return 2;
      }
      const auto v = static_cast<std::uint32_t>(*parsed);
      if (arg == "--k") scenario.config.k = v;
      if (arg == "--tl") scenario.config.tl = v;
      if (arg == "--tr") scenario.config.tr = v;
      if (arg == "--seed") seed = v;
      if (arg == "--fuzz-seed") opts.seed = v;
      if (arg == "--max-execs") opts.max_execs = v;
      if (arg == "--batch") opts.batch = v;
      if (arg == "--max-ops") opts.max_ops = v;
      if (arg == "--max-delay") opts.max_delay = v;
      if (arg == "--omission-budget") opts.omission_budget = v;
      if (arg == "--horizon") opts.horizon = v;
      if (arg == "--threads") opts.threads = static_cast<unsigned>(v);
    }
  }

  if (!core::solvable(scenario.config)) {
    std::cerr << "unsolvable setting: " << core::solvability_reason(scenario.config) << "\n";
    return 2;
  }
  scenario.input_seed = seed;
  scenario.pki_seed = seed + 1;
  core::apply_battery(scenario, battery, seed);

  if (replay.has_value()) return run_replay(scenario, opts.horizon, *replay);

  sched::Fuzzer fuzzer(scenario, opts);
  const auto report = fuzzer.run();

  std::cout << "{\n  \"scenario\": {\"topology\": \""
            << json_escape(net::to_string(scenario.config.topology))
            << "\", \"auth\": " << (scenario.config.authenticated ? "true" : "false")
            << ", \"k\": " << scenario.config.k << ", \"tl\": " << scenario.config.tl
            << ", \"tr\": " << scenario.config.tr << ", \"seed\": " << seed << ", \"battery\": \""
            << battery_name(battery) << "\", \"adversaries\": " << scenario.adversaries.size()
            << "},\n";
  std::cout << "  \"options\": {\"fuzz_seed\": " << opts.seed
            << ", \"max_execs\": " << opts.max_execs << ", \"batch\": " << opts.batch
            << ", \"max_ops\": " << opts.max_ops << ", \"max_delay\": " << opts.max_delay
            << ", \"horizon\": " << opts.horizon
            << ", \"drop\": " << (opts.allow_drop ? "true" : "false")
            << ", \"delay\": " << (opts.allow_delay ? "true" : "false")
            << ", \"reorder\": " << (opts.allow_reorder ? "true" : "false")
            << ", \"omission_budget\": " << opts.omission_budget
            << ", \"corrupt_adjacent_only\": " << (opts.corrupt_adjacent_only ? "true" : "false")
            << ", \"corpus_dir\": \"" << json_escape(opts.corpus_dir) << "\"},\n";
  std::cout << "  \"fuzz\": {\"execs\": " << report.execs
            << ", \"corpus_size\": " << report.corpus_size
            << ", \"corpus_loaded\": " << report.corpus_loaded
            << ", \"corpus_saved\": " << report.corpus_saved
            << ", \"coverage\": " << report.coverage << ", \"interesting\": " << report.interesting
            << ", \"violations\": " << report.violations << "},\n";
  std::cout << "  \"all_satisfied\": " << (report.all_satisfied() ? "true" : "false") << ",\n";
  if (report.counterexample.has_value()) {
    std::cout << "  \"counterexample\": {\"trace\": \""
              << json_escape(report.counterexample->serialize())
              << "\", \"ops\": " << report.counterexample->ops.size()
              << ", \"shrink_runs\": " << report.shrink_runs
              << ",\n    \"views\": " << views_json(report.counterexample_views) << "}\n";
  } else {
    std::cout << "  \"counterexample\": null\n";
  }
  std::cout << "}\n";
  return report.all_satisfied() ? 0 : 1;
}

struct Options {
  core::BsmConfig cfg{net::TopologyKind::FullyConnected, true, 4, 1, 1};
  std::uint64_t seed = 1;
  std::vector<std::string> adversaries;
  bool verbose = false;
  bool help = false;
};

/// Parse run-mode flags starting at argv[first]. nullopt = usage error
/// (exit 2); an Options with `help` set = --help was given (exit 0).
[[nodiscard]] std::optional<Options> parse(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help") {
      usage();
      opt.help = true;
      return opt;
    } else if (arg == "--topology") {
      const auto v = next();
      if (!v) return std::nullopt;
      if (*v == "fully") {
        opt.cfg.topology = net::TopologyKind::FullyConnected;
      } else if (*v == "one-sided") {
        opt.cfg.topology = net::TopologyKind::OneSided;
      } else if (*v == "bipartite") {
        opt.cfg.topology = net::TopologyKind::Bipartite;
      } else {
        std::cerr << "unknown topology: " << *v << "\n";
        return std::nullopt;
      }
    } else if (arg == "--auth") {
      opt.cfg.authenticated = true;
    } else if (arg == "--no-auth") {
      opt.cfg.authenticated = false;
    } else if (arg == "--k" || arg == "--tl" || arg == "--tr" || arg == "--seed") {
      const auto v = next();
      if (!v) return std::nullopt;
      const auto parsed = parse_u64(*v);
      if (!parsed || *parsed > 1'000'000) {
        std::cerr << "bad " << arg << " value: " << *v << " (expected 0..1000000)\n";
        return std::nullopt;
      }
      const auto value = static_cast<std::uint32_t>(*parsed);
      if (arg == "--k") opt.cfg.k = value;
      if (arg == "--tl") opt.cfg.tl = value;
      if (arg == "--tr") opt.cfg.tr = value;
      if (arg == "--seed") opt.seed = value;
    } else if (arg == "--adversary") {
      const auto v = next();
      if (!v) return std::nullopt;
      opt.adversaries.push_back(*v);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::cerr << "unknown argument: " << arg << " (try --help)\n";
      return std::nullopt;
    }
  }
  return opt;
}

[[nodiscard]] std::unique_ptr<net::Process> make_adversary(const std::string& kind,
                                                           const core::RunSpec& spec, PartyId id,
                                                           std::uint64_t seed) {
  if (kind == "silent") return std::make_unique<adversary::Silent>();
  if (kind == "noise") return std::make_unique<adversary::RandomNoise>(seed, 4);
  if (kind == "crash") {
    return std::make_unique<adversary::CrashAt>(
        3, core::honest_process_for(spec, id, spec.inputs.list(id)));
  }
  if (kind == "liar") {
    const auto lie = matching::contested_profile(spec.config.k);
    return core::honest_process_for(spec, id, lie.list(id));
  }
  if (kind == "split") {
    const auto lie = matching::contested_profile(spec.config.k);
    return std::make_unique<adversary::SplitBrain>(
        core::honest_process_for(spec, id, spec.inputs.list(id)),
        core::honest_process_for(spec, id, lie.list(id)),
        [](PartyId p) { return static_cast<int>(p % 2); });
  }
  std::cerr << "unknown adversary kind: " << kind << "\n";
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  int first = 1;
  if (argc > 1) {
    const std::string sub = argv[1];
    if (sub == "sweep") return run_sweep_command(argc, argv);
    if (sub == "explore") return run_explore_command(argc, argv);
    if (sub == "fuzz") return run_fuzz_command(argc, argv);
    if (sub == "bench") {
      // The registered suite = every case group the bench/ binaries run.
      benchcases::register_all();
      return core::bench_main(argc - 1, argv + 1, {.default_json = "-"});
    }
    if (sub == "run") first = 2;  // explicit alias for the default mode
  }
  const auto parsed = parse(argc, argv, first);
  if (!parsed) return 2;
  if (parsed->help) return 0;
  const Options& opt = *parsed;

  std::cout << "Setting:   " << opt.cfg.describe() << "\n";
  std::cout << "Verdict:   " << core::solvability_reason(opt.cfg) << "\n";
  if (!core::solvable(opt.cfg)) {
    std::cout << "This setting is IMPOSSIBLE per the paper; nothing to run.\n"
              << "(See bench_attack_lemma5/7/13 for executable impossibility proofs.)\n";
    return 2;
  }

  core::RunSpec spec;
  spec.config = opt.cfg;
  spec.inputs = matching::random_profile(opt.cfg.k, opt.seed);
  spec.pki_seed = opt.seed + 1;

  // Assign adversaries: alternate sides while budget remains.
  std::uint32_t used_l = 0;
  std::uint32_t used_r = 0;
  for (std::size_t i = 0; i < opt.adversaries.size(); ++i) {
    PartyId id = kNobody;
    if (used_l < opt.cfg.tl && (used_l <= used_r || used_r >= opt.cfg.tr)) {
      id = used_l++;
    } else if (used_r < opt.cfg.tr) {
      id = opt.cfg.k + used_r++;
    } else {
      std::cerr << "adversary #" << i + 1 << " exceeds the corruption budget; ignored\n";
      continue;
    }
    auto strategy = make_adversary(opt.adversaries[i], spec, id, opt.seed + i);
    if (!strategy) return 2;
    spec.adversaries.push_back({id, 0, std::move(strategy)});
  }

  if (opt.verbose) {
    std::cout << "\nPreference lists:\n";
    for (PartyId id = 0; id < opt.cfg.n(); ++id) {
      std::cout << "  P" << id << ": ";
      for (PartyId c : spec.inputs.list(id)) std::cout << "P" << c << " ";
      std::cout << "\n";
    }
  }

  const auto out = core::run_bsm(std::move(spec));

  std::cout << "\nProtocol:  " << out.spec.describe() << "\n";
  std::cout << "Cost:      " << out.rounds << " rounds, " << out.traffic.messages
            << " messages, " << out.traffic.bytes << " bytes\n\n";

  Table table({"party", "side", "status", "matched with"});
  for (PartyId id = 0; id < opt.cfg.n(); ++id) {
    std::string match = "-";
    if (!out.corrupt[id] && out.decisions[id].has_value()) {
      match = *out.decisions[id] == kNobody ? "nobody" : "P" + std::to_string(*out.decisions[id]);
    }
    table.add_row({"P" + std::to_string(id), id < opt.cfg.k ? "L" : "R",
                   out.corrupt[id] ? "byzantine" : "honest", match});
  }
  std::cout << table.render() << "\n";
  std::cout << "Properties: termination=" << out.report.termination
            << " symmetry=" << out.report.symmetry << " stability=" << out.report.stability
            << " non-competition=" << out.report.non_competition << "\n";
  for (const auto& v : out.report.violations) std::cout << "  violation: " << v << "\n";
  return out.report.all() ? 0 : 1;
}
