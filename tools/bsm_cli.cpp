// bsm_cli — run any byzantine-stable-matching scenario from the command
// line and inspect the outcome.
//
// Usage:
//   bsm_cli [--topology fully|one-sided|bipartite] [--auth|--no-auth]
//           [--k N] [--tl N] [--tr N] [--seed S]
//           [--adversary silent|noise|liar|split|crash]...
//           [--verbose]
//
// Adversaries are assigned to the highest-budget ids per side, one flag per
// corrupted party, alternating L then R while budget remains. Exits 0 when
// all four bSM properties held; 2 when the setting is unsolvable per the
// paper; 1 on a property violation (which inside the solvable region would
// be a library bug — please report it).
#include <cstring>
#include <iostream>
#include <string>

#include "adversary/shims.hpp"
#include "adversary/strategies.hpp"
#include "common/table.hpp"
#include "core/oracle.hpp"
#include "core/runner.hpp"
#include "matching/generators.hpp"

namespace {

using namespace bsm;

void usage() {
  std::cout <<
      R"(bsm_cli — byzantine stable matching scenario runner

  --topology fully|one-sided|bipartite   network topology  (default: fully)
  --auth / --no-auth                     PKI available?    (default: auth)
  --k N                                  parties per side  (default: 4)
  --tl N / --tr N                        corruption budgets (default: 1/1)
  --seed S                               workload seed     (default: 1)
  --adversary KIND                       add one corrupted party, kinds:
                                         silent noise liar split crash
  --verbose                              print preference lists too
  --help                                 this text
)";
}

struct Options {
  core::BsmConfig cfg{net::TopologyKind::FullyConnected, true, 4, 1, 1};
  std::uint64_t seed = 1;
  std::vector<std::string> adversaries;
  bool verbose = false;
};

[[nodiscard]] std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help") {
      usage();
      return std::nullopt;
    } else if (arg == "--topology") {
      const auto v = next();
      if (!v) return std::nullopt;
      if (*v == "fully") {
        opt.cfg.topology = net::TopologyKind::FullyConnected;
      } else if (*v == "one-sided") {
        opt.cfg.topology = net::TopologyKind::OneSided;
      } else if (*v == "bipartite") {
        opt.cfg.topology = net::TopologyKind::Bipartite;
      } else {
        std::cerr << "unknown topology: " << *v << "\n";
        return std::nullopt;
      }
    } else if (arg == "--auth") {
      opt.cfg.authenticated = true;
    } else if (arg == "--no-auth") {
      opt.cfg.authenticated = false;
    } else if (arg == "--k" || arg == "--tl" || arg == "--tr" || arg == "--seed") {
      const auto v = next();
      if (!v) return std::nullopt;
      const auto value = static_cast<std::uint32_t>(std::stoul(*v));
      if (arg == "--k") opt.cfg.k = value;
      if (arg == "--tl") opt.cfg.tl = value;
      if (arg == "--tr") opt.cfg.tr = value;
      if (arg == "--seed") opt.seed = value;
    } else if (arg == "--adversary") {
      const auto v = next();
      if (!v) return std::nullopt;
      opt.adversaries.push_back(*v);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::cerr << "unknown argument: " << arg << " (try --help)\n";
      return std::nullopt;
    }
  }
  return opt;
}

[[nodiscard]] std::unique_ptr<net::Process> make_adversary(const std::string& kind,
                                                           const core::RunSpec& spec, PartyId id,
                                                           std::uint64_t seed) {
  if (kind == "silent") return std::make_unique<adversary::Silent>();
  if (kind == "noise") return std::make_unique<adversary::RandomNoise>(seed, 4);
  if (kind == "crash") {
    return std::make_unique<adversary::CrashAt>(
        3, core::honest_process_for(spec, id, spec.inputs.list(id)));
  }
  if (kind == "liar") {
    const auto lie = matching::contested_profile(spec.config.k);
    return core::honest_process_for(spec, id, lie.list(id));
  }
  if (kind == "split") {
    const auto lie = matching::contested_profile(spec.config.k);
    return std::make_unique<adversary::SplitBrain>(
        core::honest_process_for(spec, id, spec.inputs.list(id)),
        core::honest_process_for(spec, id, lie.list(id)),
        [](PartyId p) { return static_cast<int>(p % 2); });
  }
  std::cerr << "unknown adversary kind: " << kind << "\n";
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 2;
  const Options& opt = *parsed;

  std::cout << "Setting:   " << opt.cfg.describe() << "\n";
  std::cout << "Verdict:   " << core::solvability_reason(opt.cfg) << "\n";
  if (!core::solvable(opt.cfg)) {
    std::cout << "This setting is IMPOSSIBLE per the paper; nothing to run.\n"
              << "(See bench_attack_lemma5/7/13 for executable impossibility proofs.)\n";
    return 2;
  }

  core::RunSpec spec;
  spec.config = opt.cfg;
  spec.inputs = matching::random_profile(opt.cfg.k, opt.seed);
  spec.pki_seed = opt.seed + 1;

  // Assign adversaries: alternate sides while budget remains.
  std::uint32_t used_l = 0;
  std::uint32_t used_r = 0;
  for (std::size_t i = 0; i < opt.adversaries.size(); ++i) {
    PartyId id = kNobody;
    if (used_l < opt.cfg.tl && (used_l <= used_r || used_r >= opt.cfg.tr)) {
      id = used_l++;
    } else if (used_r < opt.cfg.tr) {
      id = opt.cfg.k + used_r++;
    } else {
      std::cerr << "adversary #" << i + 1 << " exceeds the corruption budget; ignored\n";
      continue;
    }
    auto strategy = make_adversary(opt.adversaries[i], spec, id, opt.seed + i);
    if (!strategy) return 2;
    spec.adversaries.push_back({id, 0, std::move(strategy)});
  }

  if (opt.verbose) {
    std::cout << "\nPreference lists:\n";
    for (PartyId id = 0; id < opt.cfg.n(); ++id) {
      std::cout << "  P" << id << ": ";
      for (PartyId c : spec.inputs.list(id)) std::cout << "P" << c << " ";
      std::cout << "\n";
    }
  }

  const auto out = core::run_bsm(std::move(spec));

  std::cout << "\nProtocol:  " << out.spec.describe() << "\n";
  std::cout << "Cost:      " << out.rounds << " rounds, " << out.traffic.messages
            << " messages, " << out.traffic.bytes << " bytes\n\n";

  Table table({"party", "side", "status", "matched with"});
  for (PartyId id = 0; id < opt.cfg.n(); ++id) {
    std::string match = "-";
    if (!out.corrupt[id] && out.decisions[id].has_value()) {
      match = *out.decisions[id] == kNobody ? "nobody" : "P" + std::to_string(*out.decisions[id]);
    }
    table.add_row({"P" + std::to_string(id), id < opt.cfg.k ? "L" : "R",
                   out.corrupt[id] ? "byzantine" : "honest", match});
  }
  std::cout << table.render() << "\n";
  std::cout << "Properties: termination=" << out.report.termination
            << " symmetry=" << out.report.symmetry << " stability=" << out.report.stability
            << " non-competition=" << out.report.non_competition << "\n";
  for (const auto& v : out.report.violations) std::cout << "  violation: " << v << "\n";
  return out.report.all() ? 0 : 1;
}
