// bsm_cli — run any byzantine-stable-matching scenario from the command
// line and inspect the outcome, sweep whole scenario grids in parallel
// (monolithic or sharded/streamed/resumable), merge shard outputs, run
// systematic or fuzzing schedule searches, or run the benchmark suite.
//
// Subcommands (see `bsm_cli --help` for every flag):
//   bsm_cli [run] [flags]    one scenario, human-readable outcome table
//   bsm_cli sweep [flags]    a cartesian scenario grid via run_sweep();
//                            one inline JSON document on stdout, or — with
//                            --out — a streamed JSONL shard document plus
//                            a JSON summary report (core/shard.hpp)
//   bsm_cli merge [flags]    merge + validate shard JSONL files into the
//                            canonical single-process document
//   bsm_cli explore [flags]  systematic delivery-schedule search (sched::explore)
//   bsm_cli fuzz [flags]     coverage-guided schedule fuzzing (sched::Fuzzer)
//   bsm_cli bench [flags]    the full benchmark suite via the shared harness
//
// Every subcommand parses through the declarative flag tables in
// common/cli_options.hpp (one table per subcommand, below) and every
// machine-readable report leads with the shared JSON envelope
// (core/envelope.hpp). Exits 0 when all four bSM properties held; 2 when
// the setting is unsolvable per the paper (or on a usage error); 1 on a
// property violation (which inside the solvable region would be a library
// bug — please report it).
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "adversary/shims.hpp"
#include "adversary/strategies.hpp"
#include "cases/cases.hpp"
#include "common/cli_options.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "core/bench.hpp"
#include "core/envelope.hpp"
#include "core/oracle.hpp"
#include "core/runner.hpp"
#include "core/shard.hpp"
#include "core/sweep.hpp"
#include "matching/generators.hpp"
#include "obs/progress.hpp"
#include "obs/recorder.hpp"
#include "sched/explorer.hpp"
#include "sched/fuzz.hpp"
#include "sched/policy.hpp"
#include "sched/trace.hpp"

namespace {

using namespace bsm;

// -------------------------------------------------------- shared parsers

[[nodiscard]] std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

[[nodiscard]] std::optional<net::TopologyKind> parse_topology(const std::string& name) {
  if (name == "fully") return net::TopologyKind::FullyConnected;
  if (name == "one-sided") return net::TopologyKind::OneSided;
  if (name == "bipartite") return net::TopologyKind::Bipartite;
  return std::nullopt;
}

[[nodiscard]] std::optional<core::Battery> parse_battery(const std::string& name) {
  if (name == "silent") return core::Battery::Silent;
  if (name == "noise") return core::Battery::Noise;
  if (name == "liars") return core::Battery::Liars;
  if (name == "adaptive") return core::Battery::AdaptiveCrash;
  if (name == "omission") return core::Battery::Omission;
  return std::nullopt;
}

[[nodiscard]] const char* battery_name(core::Battery battery) {
  switch (battery) {
    case core::Battery::Silent:
      return "silent";
    case core::Battery::Noise:
      return "noise";
    case core::Battery::Liars:
      return "liars";
    case core::Battery::AdaptiveCrash:
      return "adaptive";
    case core::Battery::Omission:
      return "omission";
  }
  return "?";
}

/// Row factory for a bounded integer flag writing through `assign`.
template <typename Assign>
[[nodiscard]] cli::FlagSpec bounded_flag(std::string name, std::string value_name,
                                         std::string help, std::uint64_t lo, std::uint64_t hi,
                                         Assign assign) {
  return cli::value_flag(
      std::move(name), std::move(value_name), std::move(help),
      [lo, hi, assign](const std::string& v) -> std::optional<std::string> {
        std::uint64_t n = 0;
        if (auto reason = cli::parse_bounded(v, lo, hi, n)) return reason;
        assign(n);
        return std::nullopt;
      });
}

/// The scenario axes shared by explore and fuzz (one fixed cell, not a
/// grid): topology/auth/k/tl/tr/seed/battery.
void add_scenario_flags(cli::Subcommand& sub, core::BsmConfig& cfg, std::uint64_t& seed,
                        core::Battery& battery) {
  sub.flags.push_back(cli::value_flag(
      "--topology", "KIND", "fully|one-sided|bipartite topology (default: fully)",
      [&cfg](const std::string& v) -> std::optional<std::string> {
        const auto parsed = parse_topology(v);
        if (!parsed) return "expected fully|one-sided|bipartite";
        cfg.topology = *parsed;
        return std::nullopt;
      }));
  sub.flags.push_back(
      cli::flag("--auth", "PKI available (default)", [&cfg] { cfg.authenticated = true; }));
  sub.flags.push_back(
      cli::flag("--no-auth", "no PKI", [&cfg] { cfg.authenticated = false; }));
  sub.flags.push_back(bounded_flag("--k", "N", "parties per side (default: 2)", 0, 1'000'000,
                                   [&cfg](std::uint64_t n) { cfg.k = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag("--tl", "N", "corruption budget within L (default: 1)", 0,
                                   1'000'000,
                                   [&cfg](std::uint64_t n) { cfg.tl = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag("--tr", "N", "corruption budget within R (default: 0)", 0,
                                   1'000'000,
                                   [&cfg](std::uint64_t n) { cfg.tr = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag("--seed", "S", "workload seed (default: 1)", 0, 1'000'000,
                                   [&seed](std::uint64_t n) { seed = n; }));
  sub.flags.push_back(cli::value_flag(
      "--battery", "KIND", "silent,noise,liars,adaptive,omission (default: silent)",
      [&battery](const std::string& v) -> std::optional<std::string> {
        const auto parsed = parse_battery(v);
        if (!parsed) return "expected silent|noise|liars|adaptive|omission";
        battery = *parsed;
        return std::nullopt;
      }));
}

/// The --ops row shared by explore and fuzz.
[[nodiscard]] cli::FlagSpec ops_flag(bool& drop, bool& delay, bool& reorder) {
  return cli::value_flag(
      "--ops", "LIST", "comma list of drop,delay,reorder (default: drop,delay)",
      [&drop, &delay, &reorder](const std::string& v) -> std::optional<std::string> {
        bool d = false;
        bool dl = false;
        bool r = false;
        for (const auto& op : split_csv(v)) {
          if (op == "drop") {
            d = true;
          } else if (op == "delay") {
            dl = true;
          } else if (op == "reorder") {
            r = true;
          } else {
            return "unknown op: " + op + ", expected drop|delay|reorder";
          }
        }
        drop = d;
        delay = dl;
        reorder = r;
        return std::nullopt;
      });
}

// ---------------------------------------------------- observability flags

/// The obs-layer surface shared across subcommands: --trace-out (Chrome
/// trace-event JSON), --metrics (report block), --progress (stderr
/// heartbeat). All optional; when none is given the recorder is never
/// created and output stays byte-identical to older builds.
struct ObsCli {
  std::string trace_path;
  bool metrics = false;
  std::uint64_t progress_secs = 0;  ///< 0 = off

  [[nodiscard]] bool enabled() const {
    return !trace_path.empty() || metrics || progress_secs > 0;
  }
};

void add_obs_flags(cli::Subcommand& sub, ObsCli& o, bool with_metrics, bool with_progress) {
  sub.flags.push_back(cli::value_flag(
      "--trace-out", "FILE", "write a Chrome trace-event JSON trace (open in Perfetto)",
      [&o](const std::string& v) -> std::optional<std::string> {
        if (v.empty()) return "expected a file path";
        o.trace_path = v;
        return std::nullopt;
      }));
  if (with_metrics) {
    sub.flags.push_back(cli::flag(
        "--metrics",
        "append a versioned metrics block (counter totals +\n"
        "                        latency percentiles) to the JSON report",
        [&o] { o.metrics = true; }));
  }
  if (with_progress) {
    sub.flags.push_back(cli::optional_value_flag(
        "--progress", "SECS", "heartbeat progress lines on stderr every SECS seconds (default: 2)",
        [&o] { o.progress_secs = 2; },
        [&o](const std::string& v) { return cli::parse_bounded(v, 1, 86400, o.progress_secs); }));
  }
}

/// One subcommand's recorder lifetime: validate --trace-out up front,
/// install the recorder, run the heartbeat, export on finish(). Every
/// method is a no-op when no obs flag was given.
class ObsSession {
 public:
  ObsSession() = default;
  ~ObsSession() { finish(); }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// False = `error()` explains the unwritable --trace-out path (exit 2).
  [[nodiscard]] bool begin(const ObsCli& o, std::uint64_t total_work, obs::Counter done,
                           const char* unit) {
    if (!o.enabled()) return true;
    if (!o.trace_path.empty()) {
      trace_out_.open(o.trace_path, std::ios::binary | std::ios::trunc);
      if (!trace_out_) {
        error_ = "cannot write --trace-out file: " + o.trace_path;
        return false;
      }
    }
    emit_metrics_ = o.metrics;
    obs::Recorder::Options ropts;
    ropts.capture_spans = !o.trace_path.empty();
    recorder_ = std::make_unique<obs::Recorder>(ropts);
    recorder_->set_total_work(total_work);
    obs::install(recorder_.get());
    if (o.progress_secs > 0) {
      progress_.start(*recorder_, {o.progress_secs, done, unit}, std::cerr);
    }
    return true;
  }

  /// Stop the heartbeat, uninstall the recorder, write the trace file.
  /// Idempotent; runs from the destructor on early-exit paths too.
  void finish() {
    if (recorder_ == nullptr || finished_) return;
    finished_ = true;
    progress_.stop();
    obs::install(nullptr);
    if (trace_out_.is_open()) {
      trace_out_ << recorder_->chrome_trace_json();
      trace_out_.close();
    }
  }

  [[nodiscard]] bool metrics_enabled() const { return recorder_ != nullptr && emit_metrics_; }

  /// The single-line metrics object; finishes the session first so the
  /// numbers cover the whole run (including cache save/load).
  [[nodiscard]] std::string metrics_json() {
    finish();
    return recorder_->metrics_json();
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::unique_ptr<obs::Recorder> recorder_;
  obs::ProgressReporter progress_;
  std::ofstream trace_out_;
  std::string error_;
  bool emit_metrics_ = false;
  bool finished_ = false;
};

// ------------------------------------------------------------- sweep mode

/// Everything the sweep flag table binds to.
struct SweepCli {
  core::SweepGrid grid;
  std::uint64_t num_seeds = 2;
  std::uint64_t sched_seeds = 1;
  sched::PolicyDesc sched_base;
  bool sched_gst = false;            ///< --sched gst: fan out over gst_axis
  std::vector<Round> gsts = {0, 2};  ///< --gst: the GST values of that axis
  core::SweepOptions opts;

  // Streaming surface (core/shard.hpp); active iff --out is given.
  std::string out_path;
  core::ShardSpec shard;
  bool shard_given = false;
  bool resume = false;
  std::string oracle_dir;
  std::uint64_t checkpoint_every = 64;

  ObsCli obs;
};

[[nodiscard]] cli::Subcommand sweep_subcommand(SweepCli& o) {
  cli::Subcommand sub;
  sub.name = "sweep";
  sub.summary = "run a scenario grid in parallel, emit JSON (or JSONL shards) on stdout";
  sub.intro =
      "enumerates the cartesian grid over every axis below and runs\n"
      "each cell on a work-stealing thread pool. Default output: one inline JSON\n"
      "document on stdout with per-cell outcomes, aggregate totals, the scheduler\n"
      "shape, and the oracle-cache counters. With --out FILE.jsonl the results\n"
      "stream to FILE as JSONL — one line per cell in deterministic grid order\n"
      "with periodic checkpoint records — and stdout gets a JSON summary report;\n"
      "--shard i/N runs one contiguous shard of the grid, --resume continues a\n"
      "killed run from its last complete line, and --oracle-cache DIR persists\n"
      "solvability verdicts across shard processes. Merged shard outputs are\n"
      "byte-identical to the single-process sweep (see `bsm_cli merge`).\n"
      "Exit 0 iff every solvable cell held all four properties";
  sub.flags = {
      cli::value_flag("--topology", "LIST",
                      "comma list of fully,one-sided,bipartite (default: all)",
                      [&o](const std::string& v) -> std::optional<std::string> {
                        std::vector<net::TopologyKind> kinds;
                        for (const auto& t : split_csv(v)) {
                          const auto parsed = parse_topology(t);
                          if (!parsed) return "unknown topology: " + t;
                          kinds.push_back(*parsed);
                        }
                        o.grid.topologies = std::move(kinds);
                        return std::nullopt;
                      }),
      cli::value_flag("--auth", "both|on|off", "authentication axis (default: both)",
                      [&o](const std::string& v) -> std::optional<std::string> {
                        if (v == "both") {
                          o.grid.auths = {false, true};
                        } else if (v == "on") {
                          o.grid.auths = {true};
                        } else if (v == "off") {
                          o.grid.auths = {false};
                        } else {
                          return "expected both|on|off";
                        }
                        return std::nullopt;
                      }),
  };
  const auto u32_list = [](const std::string& v,
                           std::vector<std::uint32_t>& out) -> std::optional<std::string> {
    std::vector<std::uint32_t> values;
    for (const auto& item : split_csv(v)) {
      const auto parsed = parse_u64(item);
      if (!parsed || *parsed > 64) return "expected comma list of 0..64";
      values.push_back(static_cast<std::uint32_t>(*parsed));
    }
    out = std::move(values);
    return std::nullopt;
  };
  sub.flags.push_back(cli::value_flag(
      "--k", "LIST", "comma list of market sizes (default: 3)",
      [&o, u32_list](const std::string& v) { return u32_list(v, o.grid.ks); }));
  sub.flags.push_back(cli::value_flag(
      "--tl", "LIST", "comma list of L budgets (default: 0..k)",
      [&o, u32_list](const std::string& v) { return u32_list(v, o.grid.tls); }));
  sub.flags.push_back(cli::value_flag(
      "--tr", "LIST", "comma list of R budgets (default: 0..k)",
      [&o, u32_list](const std::string& v) { return u32_list(v, o.grid.trs); }));
  sub.flags.push_back(bounded_flag("--seeds", "N", "workload seeds 1..N (default: 2)", 1, 10000,
                                   [&o](std::uint64_t n) { o.num_seeds = n; }));
  sub.flags.push_back(cli::value_flag(
      "--battery", "LIST",
      "comma list of silent,noise,liars,adaptive,omission (default: all but omission)",
      [&o](const std::string& v) -> std::optional<std::string> {
        std::vector<core::Battery> batteries;
        for (const auto& b : split_csv(v)) {
          const auto battery = parse_battery(b);
          if (!battery) return "unknown battery: " + b;
          batteries.push_back(*battery);
        }
        o.grid.batteries = std::move(batteries);
        return std::nullopt;
      }));
  sub.flags.push_back(cli::value_flag(
      "--sched", "KIND",
      "delivery schedule per cell: sync,delay,omit,gst (default: sync;\n"
      "                        delay/omit/gst perturb only corrupt-adjacent channels)",
      [&o](const std::string& v) -> std::optional<std::string> {
        o.sched_gst = false;
        if (v == "sync") {
          o.sched_base.kind = sched::PolicyDesc::Kind::Synchronous;
        } else if (v == "delay") {
          o.sched_base.kind = sched::PolicyDesc::Kind::RandomDelay;
        } else if (v == "omit") {
          o.sched_base.kind = sched::PolicyDesc::Kind::TargetedOmission;
        } else if (v == "gst") {
          o.sched_base.kind = sched::PolicyDesc::Kind::EventualSynchrony;
          o.sched_gst = true;
        } else {
          return "expected sync|delay|omit|gst";
        }
        return std::nullopt;
      }));
  sub.flags.push_back(cli::value_flag(
      "--gst", "LIST",
      "with --sched gst: comma list of GST engine rounds to fan\n"
      "                        each setting out over (default: 0,2)",
      [&o, u32_list](const std::string& v) -> std::optional<std::string> {
        std::vector<std::uint32_t> values;
        if (auto reason = u32_list(v, values)) return reason;
        if (values.empty()) return "expected at least one GST value";
        o.gsts.assign(values.begin(), values.end());
        return std::nullopt;
      }));
  sub.flags.push_back(bounded_flag(
      "--sched-seeds", "N", "fan each setting out over N schedule seeds (default: 1)", 1, 10000,
      [&o](std::uint64_t n) { o.sched_seeds = n; }));
  sub.flags.push_back(bounded_flag(
      "--max-rounds", "N",
      "engine-round guard per cell, 0 = deadline + stall budget (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.grid.max_rounds = static_cast<Round>(n); }));
  sub.flags.push_back(bounded_flag(
      "--threads", "N", "worker threads, 0 = hardware (default: 0)", 0, 1024,
      [&o](std::uint64_t n) { o.opts.threads = static_cast<unsigned>(n); }));
  sub.flags.push_back(cli::value_flag(
      "--schedule", "KIND", "cell scheduler: stealing|static (default: stealing)",
      [&o](const std::string& v) -> std::optional<std::string> {
        if (v == "stealing") {
          o.opts.schedule = core::Schedule::WorkStealing;
        } else if (v == "static") {
          o.opts.schedule = core::Schedule::Static;
        } else {
          return "expected stealing|static";
        }
        return std::nullopt;
      }));
  sub.flags.push_back(cli::value_flag(
      "--out", "FILE", "stream results to FILE as JSONL (summary report on stdout)",
      [&o](const std::string& v) -> std::optional<std::string> {
        if (v.empty()) return "expected a file path";
        o.out_path = v;
        return std::nullopt;
      }));
  sub.flags.push_back(cli::value_flag(
      "--shard", "I/N", "run shard I of N (contiguous grid slice; requires --out)",
      [&o](const std::string& v) -> std::optional<std::string> {
        const auto parsed = core::ShardSpec::parse(v);
        if (!parsed) return "expected I/N with 1 <= I <= N";
        o.shard = *parsed;
        o.shard_given = true;
        return std::nullopt;
      }));
  sub.flags.push_back(cli::flag(
      "--resume", "continue an interrupted --out run from its last complete line",
      [&o] { o.resume = true; }));
  sub.flags.push_back(cli::value_flag(
      "--oracle-cache", "DIR", "persist/reuse solvability verdicts across processes",
      [&o](const std::string& v) -> std::optional<std::string> {
        if (v.empty()) return "expected a directory path";
        o.oracle_dir = v;
        return std::nullopt;
      }));
  sub.flags.push_back(bounded_flag(
      "--checkpoint-every", "N", "JSONL checkpoint period in cells (default: 64)", 1, 1'000'000,
      [&o](std::uint64_t n) { o.checkpoint_every = n; }));
  add_obs_flags(sub, o.obs, /*with_metrics=*/true, /*with_progress=*/true);
  return sub;
}

int run_sweep_command(int argc, char** argv) {
  SweepCli o;
  o.grid.topologies = {net::TopologyKind::FullyConnected, net::TopologyKind::OneSided,
                       net::TopologyKind::Bipartite};
  o.grid.auths = {false, true};
  o.grid.ks = {3};
  o.grid.batteries = {core::Battery::Silent, core::Battery::Noise, core::Battery::Liars,
                      core::Battery::AdaptiveCrash};

  const cli::Subcommand sub = sweep_subcommand(o);
  switch (cli::parse_flags(sub, argc, argv, 2, std::cerr)) {
    case cli::ParseStatus::Help:
      return 0;
    case cli::ParseStatus::Error:
      return 2;
    case cli::ParseStatus::Ok:
      break;
  }
  if (o.out_path.empty() && (o.shard_given || o.resume)) {
    std::cerr << "sweep: --shard/--resume require --out FILE (try --help)\n";
    return 2;
  }

  o.grid.seeds.clear();
  for (std::uint64_t s = 1; s <= o.num_seeds; ++s) o.grid.seeds.push_back(s);
  o.grid.scheds = o.sched_gst ? core::gst_axis(o.sched_base, o.gsts, o.sched_seeds)
                              : core::schedule_axis(o.sched_base, o.sched_seeds);
  const auto cells = o.grid.cells();

  ObsSession obs_session;
  {
    const auto [obs_begin, obs_end] = o.shard.range(cells.size());
    const std::uint64_t total = o.out_path.empty() ? cells.size() : obs_end - obs_begin;
    if (!obs_session.begin(o.obs, total, obs::Counter::CellsDone, "cells")) {
      std::cerr << "sweep: " << obs_session.error() << "\n";
      return 2;
    }
  }

  std::size_t oracle_loaded = 0;
  if (!o.oracle_dir.empty()) {
    oracle_loaded = core::load_oracle_cache(core::OracleCache::global(), o.oracle_dir);
  }

  if (!o.out_path.empty()) {
    core::StreamOptions sopts;
    sopts.shard = o.shard;
    sopts.checkpoint_every = o.checkpoint_every;
    sopts.sweep = o.opts;
    const auto res = core::stream_sweep_file(cells, sopts, o.out_path, o.resume);
    if (!res.error.empty()) {
      std::cerr << "sweep: " << res.error << "\n";
      return 2;
    }
    std::size_t oracle_saved = 0;
    if (!o.oracle_dir.empty()) {
      oracle_saved = core::save_oracle_cache(core::OracleCache::global(), o.oracle_dir);
    }
    const auto& st = res.stats;
    const auto [begin, end] = o.shard.range(cells.size());
    std::string metrics_part;
    if (obs_session.metrics_enabled()) {
      metrics_part = "\"metrics\": " + obs_session.metrics_json() + ",\n  ";
    }
    obs_session.finish();
    std::ostringstream hit_rate;
    hit_rate << st.sweep.oracle.hit_rate();
    std::cout << "{\n  " << core::envelope_json("sweep", o.opts.threads)
              << ",\n  \"grid_digest\": \"" << to_hex(core::grid_digest(cells))
              << "\", \"total_cells\": " << cells.size() << ", \"shard\": \"" << o.shard.str()
              << "\", \"begin\": " << begin << ", \"end\": " << end << ",\n  \"out\": \""
              << json_escape(o.out_path) << "\", \"resume\": " << (o.resume ? "true" : "false")
              << ", \"resumed_complete\": " << (res.resumed_complete ? "true" : "false")
              << ",\n  \"cells\": " << st.cells << ", \"ran\": " << st.ran
              << ", \"emitted\": " << st.emitted << ", \"resumed\": " << st.resumed
              << ",\n  \"oracle_loaded\": " << oracle_loaded
              << ", \"oracle_saved\": " << oracle_saved
              << ",\n  \"scheduler\": {\"threads\": " << st.sweep.threads
              << ", \"chunks\": " << st.sweep.chunks << ", \"steals\": " << st.sweep.steals
              << "},\n  \"oracle_cache\": {\"hits\": " << st.sweep.oracle.hits
              << ", \"misses\": " << st.sweep.oracle.misses
              << ", \"inserts\": " << st.sweep.oracle.inserts << ", \"hit_rate\": "
              << hit_rate.str() << "},\n  " << metrics_part << "\"all_properties_held\": "
              << (st.all_ok ? "true" : "false") << "\n}\n";
    return st.all_ok ? 0 : 1;
  }

  // Inline document (the historical sweep output; CI smoke parses it).
  core::SweepStats stats;
  const auto results = core::run_sweep(cells, o.opts, &stats);
  if (!o.oracle_dir.empty()) {
    (void)core::save_oracle_cache(core::OracleCache::global(), o.oracle_dir);
  }
  std::string metrics_part;
  if (obs_session.metrics_enabled()) {
    metrics_part = "\"metrics\": " + obs_session.metrics_json() + ",\n  ";
  }
  obs_session.finish();

  bool all_ok = true;
  std::size_t ran = 0;
  std::cout << "{\n  " << core::envelope_json("sweep", stats.threads) << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& cell = results[i];
    if (cell.outcome.has_value()) {
      ++ran;
      all_ok &= cell.outcome->report.all();
    }
    std::cout << "    {" << core::cell_json_fields(cell) << "}"
              << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::ostringstream hit_rate;
  hit_rate << stats.oracle.hit_rate();
  std::cout << "  ],\n  \"total_cells\": " << results.size() << ",\n  \"ran\": " << ran
            << ",\n  \"scheduler\": {\"threads\": " << stats.threads
            << ", \"chunks\": " << stats.chunks << ", \"steals\": " << stats.steals
            << "},\n  \"oracle_cache\": {\"hits\": " << stats.oracle.hits
            << ", \"misses\": " << stats.oracle.misses << ", \"inserts\": " << stats.oracle.inserts
            << ", \"hit_rate\": " << hit_rate.str() << "},\n  " << metrics_part
            << "\"all_properties_held\": " << (all_ok ? "true" : "false") << "\n}\n";
  return all_ok ? 0 : 1;
}

// ------------------------------------------------------------- merge mode

int run_merge_command(int argc, char** argv) {
  std::string out_path = "-";
  std::vector<std::string> inputs;

  cli::Subcommand sub;
  sub.name = "merge";
  sub.summary = "merge + validate sweep shard JSONL files into the 1/1 document";
  sub.intro =
      "concatenates complete `sweep --out` shard files (any order) into\n"
      "the canonical single-process JSONL document, validating that they come\n"
      "from one grid and one build and tile it exactly. The merged output is\n"
      "byte-identical to a `sweep --out` run without --shard. Exit 0 on a\n"
      "valid merge, 2 on any mismatch, gap, overlap, or incomplete shard";
  sub.positional_name = "FILE.jsonl";
  sub.positional_help = "shard documents produced by `sweep --out` (one per shard)";
  sub.positional = [&inputs](const std::string& path) { inputs.push_back(path); };
  sub.flags = {
      cli::value_flag("--out", "PATH|-", "write the merged JSONL to PATH (default: stdout)",
                      [&out_path](const std::string& v) -> std::optional<std::string> {
                        if (v.empty()) return "expected a file path or -";
                        out_path = v;
                        return std::nullopt;
                      }),
  };
  switch (cli::parse_flags(sub, argc, argv, 2, std::cerr)) {
    case cli::ParseStatus::Help:
      return 0;
    case cli::ParseStatus::Error:
      return 2;
    case cli::ParseStatus::Ok:
      break;
  }
  if (inputs.empty()) {
    std::cerr << "merge: no shard files given (try --help)\n";
    return 2;
  }

  std::vector<std::string> docs;
  docs.reserve(inputs.size());
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "merge: cannot read " << path << "\n";
      return 2;
    }
    docs.emplace_back(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  std::string error;
  const auto merged = core::merge_jsonl(docs, &error);
  if (!merged) {
    std::cerr << "merge: " << error << "\n";
    return 2;
  }
  if (out_path == "-") {
    std::cout << *merged;
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "merge: cannot write " << out_path << "\n";
      return 2;
    }
    out << *merged;
  }
  return 0;
}

// ----------------------------------------------------------- explore mode

[[nodiscard]] std::string views_json(const std::vector<std::uint64_t>& views) {
  std::string out = "[";
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(views[i]);
  }
  return out + "]";
}

/// Shared by `explore --replay` and `fuzz --replay`: run one serialized
/// trace under the scenario and print the replay JSON document. The
/// output depends only on (scenario, horizon, trace), so a
/// counterexample replays bit-for-bit from either subcommand.
int run_replay(core::ScenarioSpec scenario, Round horizon, Round max_rounds,
               const std::string& serialized) {
  const auto trace = sched::ScheduleTrace::parse(serialized);
  if (!trace) {
    std::cerr << "bad --replay trace: " << serialized << "\n";
    return 2;
  }
  scenario.sched.kind = sched::PolicyDesc::Kind::Scripted;
  scenario.sched.trace = *trace;
  // Honor --horizon exactly like the search does (horizon 0 = the
  // protocol deadline), so a counterexample found under a truncated
  // horizon reproduces on replay. Stepping goes through the engine-round
  // guard: a trace that stalls the engine forever (or past --max-rounds)
  // degrades to a round_limit_hit verdict instead of hanging the replay.
  auto run = core::assemble_run(core::to_run_spec(scenario));
  const Round rounds = horizon == 0 ? run.rounds : horizon;
  const auto* policy = run.engine.delivery_policy();
  const Round budget = policy != nullptr ? policy->stall_budget() : 0;
  const Round cap = max_rounds != 0
                        ? max_rounds
                        : (rounds > UINT32_MAX - budget ? UINT32_MAX : rounds + budget);
  const auto prog = run.engine.run_guarded(rounds, cap);
  core::RunOutcome out = core::collect_outcome(run);
  out.round_limit_hit = prog.limit_hit && !out.terminated;
  std::cout << "{\n  \"replay\": {\"trace\": \"" << json_escape(trace->serialize())
            << "\", \"ops\": " << trace->ops.size() << ", \"rounds\": " << out.rounds
            << ", \"messages\": " << out.traffic.messages
            << ", \"delivered\": " << out.traffic.delivered_messages
            << ", \"dropped\": " << out.traffic.dropped_messages
            << ", \"all_properties\": " << (out.report.all() ? "true" : "false")
            << ", \"terminated\": " << (out.terminated ? "true" : "false")
            << ", \"rounds_to_termination\": " << out.rounds_to_termination
            << ", \"round_limit_hit\": " << (out.round_limit_hit ? "true" : "false")
            << ",\n    \"views\": " << views_json(out.view_hashes) << "}\n}\n";
  return out.report.all() ? 0 : 1;
}

[[nodiscard]] std::string scenario_json(const core::ScenarioSpec& scenario, std::uint64_t seed,
                                        core::Battery battery) {
  std::ostringstream out;
  out << "\"scenario\": {\"topology\": \"" << json_escape(net::to_string(scenario.config.topology))
      << "\", \"auth\": " << (scenario.config.authenticated ? "true" : "false")
      << ", \"k\": " << scenario.config.k << ", \"tl\": " << scenario.config.tl
      << ", \"tr\": " << scenario.config.tr << ", \"seed\": " << seed << ", \"battery\": \""
      << battery_name(battery) << "\", \"adversaries\": " << scenario.adversaries.size() << "}";
  return out.str();
}

struct ExploreCli {
  core::ScenarioSpec scenario;
  std::uint64_t seed = 1;
  core::Battery battery = core::Battery::Silent;
  sched::ExplorerOptions opts;
  Round max_rounds = 0;
  std::optional<std::string> replay;
  ObsCli obs;
};

[[nodiscard]] cli::Subcommand explore_subcommand(ExploreCli& o) {
  cli::Subcommand sub;
  sub.name = "explore";
  sub.summary = "systematic delivery-schedule search, emit JSON on stdout";
  sub.intro =
      "bounded iterative-deepening search over per-round delivery\n"
      "perturbations — drop/delay/reorder of channel-round groups — of one\n"
      "scenario, pruned by per-round view-hash state digests; prints one JSON\n"
      "document with schedules explored/pruned, violations, and a minimized\n"
      "counterexample trace when one exists; exit 0 = every explored schedule\n"
      "satisfied all four properties, 1 = violation found, 2 = usage error or\n"
      "unsolvable setting";
  add_scenario_flags(sub, o.scenario.config, o.seed, o.battery);
  sub.flags.push_back(bounded_flag(
      "--max-depth", "N", "max perturbation ops per schedule (default: 2)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.max_depth = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--max-delay", "N", "delay ops slip 1..N rounds (default: 1)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.max_delay = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--horizon", "N", "rounds to simulate, 0 = protocol deadline (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.horizon = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(ops_flag(o.opts.allow_drop, o.opts.allow_delay, o.opts.allow_reorder));
  sub.flags.push_back(cli::flag(
      "--include-honest",
      "also perturb honest-honest channels (beyond the\n"
      "                        fault envelope; violations become expected)",
      [&o] { o.opts.corrupt_adjacent_only = false; }));
  sub.flags.push_back(bounded_flag(
      "--max-schedules", "N", "cap on exploration runs (default: 4096)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.max_schedules = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--max-rounds", "N",
      "replay engine-round guard, 0 = horizon + stall budget (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.max_rounds = static_cast<Round>(n); }));
  sub.flags.push_back(bounded_flag(
      "--threads", "N", "per-wave fan-out, 0 = hardware (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.threads = static_cast<unsigned>(n); }));
  sub.flags.push_back(cli::value_flag(
      "--replay", "TRACE",
      "skip the search: replay one serialized schedule\n"
      "                        trace and report its outcome",
      [&o](const std::string& v) -> std::optional<std::string> {
        o.replay = v;
        return std::nullopt;
      }));
  add_obs_flags(sub, o.obs, /*with_metrics=*/true, /*with_progress=*/false);
  return sub;
}

int run_explore_command(int argc, char** argv) {
  ExploreCli o;
  o.scenario.config = core::BsmConfig{net::TopologyKind::FullyConnected, true, 2, 1, 0};

  const cli::Subcommand sub = explore_subcommand(o);
  switch (cli::parse_flags(sub, argc, argv, 2, std::cerr)) {
    case cli::ParseStatus::Help:
      return 0;
    case cli::ParseStatus::Error:
      return 2;
    case cli::ParseStatus::Ok:
      break;
  }

  if (!core::solvable(o.scenario.config)) {
    std::cerr << "unsolvable setting: " << core::solvability_reason(o.scenario.config) << "\n";
    return 2;
  }
  o.scenario.input_seed = o.seed;
  o.scenario.pki_seed = o.seed + 1;
  core::apply_battery(o.scenario, o.battery, o.seed);

  ObsSession obs_session;
  if (!obs_session.begin(o.obs, 0, obs::Counter::Evals, "execs")) {
    std::cerr << "explore: " << obs_session.error() << "\n";
    return 2;
  }

  if (o.replay.has_value()) {
    // Replay output is contractually a pure function of (scenario, trace):
    // the trace file is still written, but no metrics block is added.
    return run_replay(o.scenario, o.opts.horizon, o.max_rounds, *o.replay);
  }

  const auto report = sched::explore(o.scenario, o.opts);
  std::string metrics_part;
  if (obs_session.metrics_enabled()) {
    metrics_part = "\"metrics\": " + obs_session.metrics_json() + ",\n  ";
  }
  obs_session.finish();

  std::cout << "{\n  " << core::envelope_json("explore", o.opts.threads) << ",\n  "
            << scenario_json(o.scenario, o.seed, o.battery) << ",\n";
  std::cout << "  \"options\": {\"max_depth\": " << o.opts.max_depth
            << ", \"max_delay\": " << o.opts.max_delay << ", \"horizon\": " << o.opts.horizon
            << ", \"drop\": " << (o.opts.allow_drop ? "true" : "false")
            << ", \"delay\": " << (o.opts.allow_delay ? "true" : "false")
            << ", \"reorder\": " << (o.opts.allow_reorder ? "true" : "false")
            << ", \"corrupt_adjacent_only\": "
            << (o.opts.corrupt_adjacent_only ? "true" : "false")
            << ", \"max_schedules\": " << o.opts.max_schedules << "},\n";
  std::cout << "  \"schedules\": {\"explored\": " << report.explored
            << ", \"pruned\": " << report.pruned << ", \"violations\": " << report.violations
            << ", \"depth_reached\": " << report.depth_reached
            << ", \"truncated\": " << (report.truncated ? "true" : "false") << "},\n";
  std::cout << "  " << metrics_part << "\"all_satisfied\": "
            << (report.all_satisfied() ? "true" : "false") << ",\n";
  if (report.counterexample.has_value()) {
    std::cout << "  \"counterexample\": {\"trace\": \""
              << json_escape(report.counterexample->serialize())
              << "\", \"ops\": " << report.counterexample->ops.size()
              << ", \"shrink_runs\": " << report.shrink_runs
              << ",\n    \"views\": " << views_json(report.counterexample_views) << "}\n";
  } else {
    std::cout << "  \"counterexample\": null\n";
  }
  std::cout << "}\n";
  return report.all_satisfied() ? 0 : 1;
}

// -------------------------------------------------------------- fuzz mode

struct FuzzCli {
  core::ScenarioSpec scenario;
  std::uint64_t seed = 1;
  core::Battery battery = core::Battery::Silent;
  sched::FuzzerOptions opts;
  Round max_rounds = 0;
  std::optional<std::string> replay;
  ObsCli obs;
};

[[nodiscard]] cli::Subcommand fuzz_subcommand(FuzzCli& o) {
  cli::Subcommand sub;
  sub.name = "fuzz";
  sub.summary = "coverage-guided schedule fuzzing, emit JSON on stdout";
  sub.intro =
      "coverage-guided greybox loop over the same schedule space as\n"
      "explore: a corpus of interesting traces — ones that reached a new\n"
      "per-round view-hash trail prefix — is mutated inside the fault envelope,\n"
      "parents picked by coverage energy; prints one JSON document with\n"
      "execs/corpus/coverage/violations and a 1-minimal counterexample trace\n"
      "when one exists; same seed = bit-identical report at any thread count;\n"
      "exit 0 = no violation found, 1 = violation found, 2 = usage error or\n"
      "unsolvable setting";
  add_scenario_flags(sub, o.scenario.config, o.seed, o.battery);
  sub.flags.push_back(bounded_flag(
      "--fuzz-seed", "S", "mutation/selection rng seed (default: 1)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.seed = n; }));
  sub.flags.push_back(bounded_flag(
      "--max-execs", "N", "total simulation budget (default: 2048)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.max_execs = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--batch", "N", "candidates per parallel wave (default: 32)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.batch = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--max-ops", "N", "op cap per mutated trace (default: 8)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.max_ops = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(ops_flag(o.opts.allow_drop, o.opts.allow_delay, o.opts.allow_reorder));
  sub.flags.push_back(bounded_flag(
      "--max-delay", "N", "delay ops slip 1..N rounds (default: 2)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.max_delay = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--omission-budget", "N", "max drops charged to one target (default: 4)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.omission_budget = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(bounded_flag(
      "--horizon", "N", "rounds to simulate, 0 = protocol deadline (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.horizon = static_cast<std::uint32_t>(n); }));
  sub.flags.push_back(cli::flag(
      "--include-honest",
      "also mutate honest-honest channels (beyond the\n"
      "                        fault envelope; violations become expected)",
      [&o] { o.opts.corrupt_adjacent_only = false; }));
  sub.flags.push_back(cli::value_flag(
      "--corpus", "DIR",
      "load seed traces from DIR before fuzzing and\n"
      "                        save the final corpus back (digest-keyed files)",
      [&o](const std::string& v) -> std::optional<std::string> {
        o.opts.corpus_dir = v;
        return std::nullopt;
      }));
  sub.flags.push_back(bounded_flag(
      "--max-rounds", "N",
      "replay engine-round guard, 0 = horizon + stall budget (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.max_rounds = static_cast<Round>(n); }));
  sub.flags.push_back(bounded_flag(
      "--threads", "N", "per-wave fan-out, 0 = hardware (default: 0)", 0, 1'000'000,
      [&o](std::uint64_t n) { o.opts.threads = static_cast<unsigned>(n); }));
  sub.flags.push_back(cli::value_flag(
      "--replay", "TRACE",
      "skip the fuzzing: replay one serialized schedule\n"
      "                        trace and report its outcome",
      [&o](const std::string& v) -> std::optional<std::string> {
        o.replay = v;
        return std::nullopt;
      }));
  add_obs_flags(sub, o.obs, /*with_metrics=*/true, /*with_progress=*/true);
  return sub;
}

int run_fuzz_command(int argc, char** argv) {
  FuzzCli o;
  o.scenario.config = core::BsmConfig{net::TopologyKind::FullyConnected, true, 2, 1, 0};
  o.opts.allow_reorder = false;  // match explore's default op menu: drop,delay

  const cli::Subcommand sub = fuzz_subcommand(o);
  switch (cli::parse_flags(sub, argc, argv, 2, std::cerr)) {
    case cli::ParseStatus::Help:
      return 0;
    case cli::ParseStatus::Error:
      return 2;
    case cli::ParseStatus::Ok:
      break;
  }

  if (!core::solvable(o.scenario.config)) {
    std::cerr << "unsolvable setting: " << core::solvability_reason(o.scenario.config) << "\n";
    return 2;
  }
  o.scenario.input_seed = o.seed;
  o.scenario.pki_seed = o.seed + 1;
  core::apply_battery(o.scenario, o.battery, o.seed);

  ObsSession obs_session;
  if (!obs_session.begin(o.obs, o.replay.has_value() ? 0 : o.opts.max_execs, obs::Counter::Evals,
                         "execs")) {
    std::cerr << "fuzz: " << obs_session.error() << "\n";
    return 2;
  }

  if (o.replay.has_value()) {
    // Replay output is contractually a pure function of (scenario, trace):
    // the trace file is still written, but no metrics block is added.
    return run_replay(o.scenario, o.opts.horizon, o.max_rounds, *o.replay);
  }

  sched::Fuzzer fuzzer(o.scenario, o.opts);
  const auto report = fuzzer.run();
  std::string metrics_part;
  if (obs_session.metrics_enabled()) {
    metrics_part = "\"metrics\": " + obs_session.metrics_json() + ",\n  ";
  }
  obs_session.finish();

  // The fuzz envelope deliberately omits `threads`: the report is
  // contractually bit-identical across thread counts (the same exception
  // the JSONL header makes — see core/envelope.hpp).
  std::cout << "{\n  " << core::envelope_json("fuzz", 0, /*include_threads=*/false) << ",\n  "
            << scenario_json(o.scenario, o.seed, o.battery) << ",\n";
  std::cout << "  \"options\": {\"fuzz_seed\": " << o.opts.seed
            << ", \"max_execs\": " << o.opts.max_execs << ", \"batch\": " << o.opts.batch
            << ", \"max_ops\": " << o.opts.max_ops << ", \"max_delay\": " << o.opts.max_delay
            << ", \"horizon\": " << o.opts.horizon
            << ", \"drop\": " << (o.opts.allow_drop ? "true" : "false")
            << ", \"delay\": " << (o.opts.allow_delay ? "true" : "false")
            << ", \"reorder\": " << (o.opts.allow_reorder ? "true" : "false")
            << ", \"omission_budget\": " << o.opts.omission_budget
            << ", \"corrupt_adjacent_only\": "
            << (o.opts.corrupt_adjacent_only ? "true" : "false") << ", \"corpus_dir\": \""
            << json_escape(o.opts.corpus_dir) << "\"},\n";
  std::cout << "  \"fuzz\": {\"execs\": " << report.execs
            << ", \"corpus_size\": " << report.corpus_size
            << ", \"corpus_loaded\": " << report.corpus_loaded
            << ", \"corpus_saved\": " << report.corpus_saved
            << ", \"coverage\": " << report.coverage << ", \"interesting\": " << report.interesting
            << ", \"violations\": " << report.violations << "},\n";
  std::cout << "  " << metrics_part << "\"all_satisfied\": "
            << (report.all_satisfied() ? "true" : "false") << ",\n";
  if (report.counterexample.has_value()) {
    std::cout << "  \"counterexample\": {\"trace\": \""
              << json_escape(report.counterexample->serialize())
              << "\", \"ops\": " << report.counterexample->ops.size()
              << ", \"shrink_runs\": " << report.shrink_runs
              << ",\n    \"views\": " << views_json(report.counterexample_views) << "}\n";
  } else {
    std::cout << "  \"counterexample\": null\n";
  }
  std::cout << "}\n";
  return report.all_satisfied() ? 0 : 1;
}

// --------------------------------------------------------------- run mode

struct RunCli {
  core::BsmConfig cfg{net::TopologyKind::FullyConnected, true, 4, 1, 1};
  std::uint64_t seed = 1;
  std::vector<std::string> adversaries;
  bool verbose = false;
  std::optional<std::string> trace;  ///< --trace: scripted delivery schedule
  std::optional<Round> gst;          ///< --gst: eventual-synchrony schedule
  std::uint64_t gst_seed = 1;
  Round max_rounds = 0;
  ObsCli obs;
};

[[nodiscard]] cli::Subcommand run_subcommand(RunCli& o) {
  cli::Subcommand sub;
  sub.name = "run";
  sub.summary = "run one scenario, print the outcome table";
  sub.intro =
      "exit 0 = all four bSM properties held, 1 = violation,\n"
      "2 = unsolvable setting or usage error";
  sub.flags = {
      cli::value_flag("--topology", "KIND", "network topology: fully|one-sided|bipartite "
                      "(default: fully)",
                      [&o](const std::string& v) -> std::optional<std::string> {
                        const auto parsed = parse_topology(v);
                        if (!parsed) return "expected fully|one-sided|bipartite";
                        o.cfg.topology = *parsed;
                        return std::nullopt;
                      }),
      cli::flag("--auth", "PKI available (default)", [&o] { o.cfg.authenticated = true; }),
      cli::flag("--no-auth", "no PKI", [&o] { o.cfg.authenticated = false; }),
      bounded_flag("--k", "N", "parties per side (default: 4)", 0, 1'000'000,
                   [&o](std::uint64_t n) { o.cfg.k = static_cast<std::uint32_t>(n); }),
      bounded_flag("--tl", "N", "corruption budget within L (default: 1)", 0, 1'000'000,
                   [&o](std::uint64_t n) { o.cfg.tl = static_cast<std::uint32_t>(n); }),
      bounded_flag("--tr", "N", "corruption budget within R (default: 1)", 0, 1'000'000,
                   [&o](std::uint64_t n) { o.cfg.tr = static_cast<std::uint32_t>(n); }),
      bounded_flag("--seed", "S", "workload seed (default: 1)", 0, 1'000'000,
                   [&o](std::uint64_t n) { o.seed = n; }),
      cli::value_flag("--adversary", "KIND",
                      "add one corrupted party: silent|noise|liar|split|crash",
                      [&o](const std::string& v) -> std::optional<std::string> {
                        if (v != "silent" && v != "noise" && v != "liar" && v != "split" &&
                            v != "crash") {
                          return "expected silent|noise|liar|split|crash";
                        }
                        o.adversaries.push_back(v);
                        return std::nullopt;
                      }),
      cli::value_flag("--trace", "TRACE",
                      "run under a scripted delivery schedule (serialized\n"
                      "                        ScheduleTrace; stall@R:0>0*N ops stall the engine)",
                      [&o](const std::string& v) -> std::optional<std::string> {
                        if (v.empty()) return "expected a serialized schedule trace";
                        o.trace = v;
                        return std::nullopt;
                      }),
      bounded_flag("--gst", "N",
                   "run under the eventual-synchrony schedule with GST at\n"
                   "                        engine round N (stalls/delays before, synchronous after)",
                   0, 1'000'000, [&o](std::uint64_t n) { o.gst = static_cast<Round>(n); }),
      bounded_flag("--gst-seed", "S", "eventual-synchrony adversary seed (default: 1)", 0,
                   1'000'000, [&o](std::uint64_t n) { o.gst_seed = n; }),
      bounded_flag("--max-rounds", "N",
                   "engine-round guard, 0 = deadline + stall budget; a\n"
                   "                        starved run reports round_limit_hit instead of hanging",
                   0, 1'000'000, [&o](std::uint64_t n) { o.max_rounds = static_cast<Round>(n); }),
      cli::flag("--verbose", "print preference lists too", [&o] { o.verbose = true; }),
  };
  add_obs_flags(sub, o.obs, /*with_metrics=*/false, /*with_progress=*/false);
  return sub;
}

[[nodiscard]] std::unique_ptr<net::Process> make_adversary(const std::string& kind,
                                                           const core::RunSpec& spec, PartyId id,
                                                           std::uint64_t seed) {
  if (kind == "silent") return std::make_unique<adversary::Silent>();
  if (kind == "noise") return std::make_unique<adversary::RandomNoise>(seed, 4);
  if (kind == "crash") {
    return std::make_unique<adversary::CrashAt>(
        3, core::honest_process_for(spec, id, spec.inputs.list(id)));
  }
  if (kind == "liar") {
    const auto lie = matching::contested_profile(spec.config.k);
    return core::honest_process_for(spec, id, lie.list(id));
  }
  if (kind == "split") {
    const auto lie = matching::contested_profile(spec.config.k);
    return std::make_unique<adversary::SplitBrain>(
        core::honest_process_for(spec, id, spec.inputs.list(id)),
        core::honest_process_for(spec, id, lie.list(id)),
        [](PartyId p) { return static_cast<int>(p % 2); });
  }
  std::cerr << "unknown adversary kind: " << kind << "\n";
  return nullptr;
}

int run_run_command(int argc, char** argv, int first) {
  RunCli opt;
  const cli::Subcommand sub = run_subcommand(opt);
  switch (cli::parse_flags(sub, argc, argv, first, std::cerr)) {
    case cli::ParseStatus::Help:
      return 0;
    case cli::ParseStatus::Error:
      return 2;
    case cli::ParseStatus::Ok:
      break;
  }
  if (opt.trace.has_value() && opt.gst.has_value()) {
    std::cerr << "run: --trace and --gst are mutually exclusive (try --help)\n";
    return 2;
  }
  ObsSession obs_session;
  if (!obs_session.begin(opt.obs, 0, obs::Counter::CellsDone, "cells")) {
    std::cerr << "run: " << obs_session.error() << "\n";
    return 2;
  }

  std::cout << "Setting:   " << opt.cfg.describe() << "\n";
  std::cout << "Verdict:   " << core::solvability_reason(opt.cfg) << "\n";
  if (!core::solvable(opt.cfg)) {
    std::cout << "This setting is IMPOSSIBLE per the paper; nothing to run.\n"
              << "(See bench_attack_lemma5/7/13 for executable impossibility proofs.)\n";
    return 2;
  }

  core::RunSpec spec;
  spec.config = opt.cfg;
  spec.inputs = matching::random_profile(opt.cfg.k, opt.seed);
  spec.pki_seed = opt.seed + 1;

  // Assign adversaries: alternate sides while budget remains.
  std::uint32_t used_l = 0;
  std::uint32_t used_r = 0;
  for (std::size_t i = 0; i < opt.adversaries.size(); ++i) {
    PartyId id = kNobody;
    if (used_l < opt.cfg.tl && (used_l <= used_r || used_r >= opt.cfg.tr)) {
      id = used_l++;
    } else if (used_r < opt.cfg.tr) {
      id = opt.cfg.k + used_r++;
    } else {
      std::cerr << "adversary #" << i + 1 << " exceeds the corruption budget; ignored\n";
      continue;
    }
    auto strategy = make_adversary(opt.adversaries[i], spec, id, opt.seed + i);
    if (!strategy) return 2;
    spec.adversaries.push_back({id, 0, std::move(strategy)});
  }

  spec.max_rounds = opt.max_rounds;
  if (opt.trace.has_value()) {
    const auto trace = sched::ScheduleTrace::parse(*opt.trace);
    if (!trace) {
      std::cerr << "bad --trace: " << *opt.trace << "\n";
      return 2;
    }
    spec.policy = std::make_unique<sched::ScriptedPolicy>(*trace);
  } else if (opt.gst.has_value()) {
    // Corrupt-adjacent fault envelope, matching the sweep layer's default
    // scope: delays/reorders only touch channels with a corrupted endpoint
    // (stalls are engine-global by construction).
    net::FaultEnvelope env;
    for (const auto& adv : spec.adversaries) env.targets.insert(adv.id);
    env.max_delay = 2;
    spec.policy =
        std::make_unique<sched::EventualSynchronyPolicy>(opt.gst_seed, *opt.gst, std::move(env));
  }

  if (opt.verbose) {
    std::cout << "\nPreference lists:\n";
    for (PartyId id = 0; id < opt.cfg.n(); ++id) {
      std::cout << "  P" << id << ": ";
      for (PartyId c : spec.inputs.list(id)) std::cout << "P" << c << " ";
      std::cout << "\n";
    }
  }

  const auto out = core::run_bsm(std::move(spec));

  std::cout << "\nProtocol:  " << out.spec.describe() << "\n";
  std::cout << "Cost:      " << out.rounds << " rounds, " << out.traffic.messages
            << " messages, " << out.traffic.bytes << " bytes\n\n";

  Table table({"party", "side", "status", "matched with"});
  for (PartyId id = 0; id < opt.cfg.n(); ++id) {
    std::string match = "-";
    if (!out.corrupt[id] && out.decisions[id].has_value()) {
      match = *out.decisions[id] == kNobody ? "nobody" : "P" + std::to_string(*out.decisions[id]);
    }
    table.add_row({"P" + std::to_string(id), id < opt.cfg.k ? "L" : "R",
                   out.corrupt[id] ? "byzantine" : "honest", match});
  }
  std::cout << table.render() << "\n";
  std::cout << "Properties: termination=" << out.report.termination
            << " symmetry=" << out.report.symmetry << " stability=" << out.report.stability
            << " non-competition=" << out.report.non_competition << "\n";
  std::cout << "Liveness:   terminated=" << out.terminated
            << " rounds_to_termination=" << out.rounds_to_termination
            << " round_limit_hit=" << out.round_limit_hit << "\n";
  for (const auto& v : out.report.violations) std::cout << "  violation: " << v << "\n";
  return out.report.all() ? 0 : 1;
}

void print_top_help() {
  RunCli run_state;
  SweepCli sweep_state;
  std::string merge_out;
  std::vector<std::string> merge_inputs;
  ExploreCli explore_state;
  FuzzCli fuzz_state;
  core::BenchCliState bench_state;

  const auto run_sub = run_subcommand(run_state);
  const auto sweep_sub = sweep_subcommand(sweep_state);
  cli::Subcommand merge_sub;
  {
    // Rebuild merge's identity rows (run_merge_command owns the live
    // table; only name/summary/intro/flags matter for help).
    merge_sub.name = "merge";
    merge_sub.summary = "merge + validate sweep shard JSONL files into the 1/1 document";
    merge_sub.positional_name = "FILE.jsonl";
    merge_sub.positional_help = "shard documents produced by `sweep --out` (one per shard)";
    merge_sub.flags = {cli::value_flag(
        "--out", "PATH|-", "write the merged JSONL to PATH (default: stdout)",
        [](const std::string&) -> std::optional<std::string> { return std::nullopt; })};
  }
  const auto explore_sub = explore_subcommand(explore_state);
  const auto fuzz_sub = fuzz_subcommand(fuzz_state);
  const auto bench_sub = core::bench_subcommand(bench_state);

  std::cout << cli::render_help(
      "bsm_cli", "byzantine stable matching toolkit",
      {&run_sub, &sweep_sub, &merge_sub, &explore_sub, &fuzz_sub, &bench_sub});
}

}  // namespace

int main(int argc, char** argv) {
  int first = 1;
  if (argc > 1) {
    const std::string sub = argv[1];
    if (sub == "--help") {
      print_top_help();
      return 0;
    }
    if (sub == "sweep") return run_sweep_command(argc, argv);
    if (sub == "merge") return run_merge_command(argc, argv);
    if (sub == "explore") return run_explore_command(argc, argv);
    if (sub == "fuzz") return run_fuzz_command(argc, argv);
    if (sub == "bench") {
      // The registered suite = every case group the bench/ binaries run.
      benchcases::register_all();
      return core::bench_main(argc - 1, argv + 1, {.default_json = "-"});
    }
    if (sub == "run") first = 2;  // explicit alias for the default mode
  }
  return run_run_command(argc, argv, first);
}
