#!/usr/bin/env python3
"""Diff two BENCH_results.json files (schema in docs/BENCHMARKS.md).

Usage: compare_bench_json.py BASELINE CURRENT [--markdown] [--threshold PCT]
                             [--fail-above PCT]

Joins cases by name and reports, per case present in both: baseline vs
current median wall time, the delta in percent, and whether the digest
changed (a digest change means the workload's observable output changed —
expected when the case was modified, alarming otherwise). Cases only in one
file are listed as added/removed. With --markdown the table is emitted as
GitHub-flavored markdown (what CI appends to the job summary).

By default this tool is REPORT-ONLY about performance: medians from
different machines, containers, or thread counts are not comparable enough
to gate a merge, so regressions never affect the exit code. --fail-above
PCT opts into a regression threshold: if any case common to both files is
more than PCT percent slower than its baseline median, the exit code is 3
(schema problems still win and exit 1). CI keeps the report-only default
and runs the threshold as a separate advisory step. Exit status:
  0  both files schema-valid, comparison printed
  1  either file fails schema validation
  2  usage error
  3  --fail-above given and at least one case regressed beyond PCT
"""
import json
import sys

from validate_json import validate_bench as validate

THRESHOLD_DEFAULT = 10.0  # flag deltas beyond +/-10% with a marker


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: {e}"]
    errors = [f"{path}: {e}" for e in validate(doc)]
    return doc, errors


def fmt_ms(v):
    return f"{v:.3f}"


def compare(base, cur, threshold):
    base_cases = {c["name"]: c for c in base.get("cases", [])}
    cur_cases = {c["name"]: c for c in cur.get("cases", [])}

    rows = []
    deltas = {}
    for name in sorted(base_cases.keys() & cur_cases.keys()):
        b, c = base_cases[name], cur_cases[name]
        delta = 0.0
        if b["median_ms"] > 0:
            delta = (c["median_ms"] - b["median_ms"]) / b["median_ms"] * 100.0
        deltas[name] = delta
        marker = ""
        if abs(delta) > threshold:
            marker = "slower" if delta > 0 else "faster"
        digest = "same" if b["digest"] == c["digest"] else "CHANGED"
        ok = "ok" if c.get("ok") and c.get("deterministic") else "FAIL"
        rows.append((name, fmt_ms(b["median_ms"]), fmt_ms(c["median_ms"]),
                     f"{delta:+.1f}%", marker, digest, ok))
    added = sorted(cur_cases.keys() - base_cases.keys())
    removed = sorted(base_cases.keys() - cur_cases.keys())
    return rows, added, removed, deltas


LIST_CAP = 20  # names listed explicitly before "(+K more)"


def fmt_names(names):
    listed = ", ".join(names[:LIST_CAP])
    more = len(names) - LIST_CAP
    return listed + (f" (+{more} more)" if more > 0 else "")


def render_text(rows, added, removed, base, cur):
    out = [f"baseline git {base.get('git_sha')} ({base.get('threads')} threads) vs "
           f"current git {cur.get('git_sha')} ({cur.get('threads')} threads)"]
    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        header = ("case", "base ms", "cur ms", "delta", "", "digest", "verdict")
        widths = [max(w, len(h)) for w, h in zip(widths, header)]
        out.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for r in rows:
            out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    else:
        # A disjoint pair (e.g. a renamed suite vs an old seed) must still
        # say so explicitly — an empty table reads as "nothing to report".
        out.append("no comparable cases: the two files share no case names")
    if added:
        # New bench groups/cases land here: name them all (capped) so a new
        # group is visible in the diff, not silently absorbed.
        out.append(f"added ({len(added)}, no baseline): {fmt_names(added)}")
    if removed:
        # Capped listing: a filtered current run (e.g. CI's smoke slice vs
        # the full-suite seed) would otherwise drown the table in rows.
        out.append(f"baseline-only ({len(removed)}, filtered or removed): "
                   f"{fmt_names(removed)}")
    return "\n".join(out)


def render_markdown(rows, added, removed, base, cur):
    out = ["### Bench regression report",
           "",
           f"Baseline `{base.get('git_sha')}` ({base.get('threads')} threads) vs "
           f"current `{cur.get('git_sha')}` ({cur.get('threads')} threads). "
           "Report-only: medians across machines are indicative, not gating.",
           "",
           "| case | base ms | cur ms | delta | | digest | verdict |",
           "|---|---:|---:|---:|---|---|---|"]
    for r in rows:
        out.append("| " + " | ".join(("`" + r[0] + "`",) + r[1:]) + " |")
    if not rows:
        out.append("| _no comparable cases — the two files share no case names_ "
                   "| | | | | | |")
    if added:
        out.append("")
        out.append(f"**Added cases ({len(added)}, no baseline):** "
                   + fmt_names([f"`{n}`" for n in added]))
    if removed:
        out.append("")
        out.append(f"**Baseline-only cases ({len(removed)}, filtered or removed):** "
                   + fmt_names([f"`{n}`" for n in removed]))
    return "\n".join(out)


def main(argv):
    markdown = False
    threshold = THRESHOLD_DEFAULT
    fail_above = None
    paths = []
    it = iter(argv[1:])
    for a in it:
        if a == "--markdown":
            markdown = True
        elif a == "--threshold":
            try:
                threshold = float(next(it))
            except (StopIteration, ValueError):
                print("--threshold needs a number", file=sys.stderr)
                return 2
        elif a == "--fail-above":
            try:
                fail_above = float(next(it))
            except (StopIteration, ValueError):
                print("--fail-above needs a number (percent)", file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    base, base_errors = load(paths[0])
    cur, cur_errors = load(paths[1])
    for e in base_errors + cur_errors:
        print(f"SCHEMA MISMATCH: {e}", file=sys.stderr)
    if base_errors or cur_errors:
        return 1

    rows, added, removed, deltas = compare(base, cur, threshold)
    render = render_markdown if markdown else render_text
    print(render(rows, added, removed, base, cur))

    if fail_above is not None:
        regressed = sorted((name, d) for name, d in deltas.items() if d > fail_above)
        if regressed:
            for name, d in regressed:
                print(f"REGRESSION: {name} is {d:+.1f}% vs baseline "
                      f"(threshold +{fail_above:.0f}%)", file=sys.stderr)
            return 3
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
