#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON file from `bsm_cli ... --trace-out`.

Usage: trace_summarize.py TRACE.json [--top N]

Reads the {"traceEvents": [...]} document the observability recorder
writes (docs/OBSERVABILITY.md) and prints three tables:

  1. Per-phase breakdown — for every span name (engine/assemble,
     sweep/cell, oracle/miss, ...): event count, total wall time, mean,
     and max. Total is summed across workers, so on an N-thread run it
     can exceed the run's wall clock — it is CPU time attributed to the
     phase, not elapsed time.
  2. Per-worker busy time — for every named thread row: events and the
     summed duration of its top-level spans, flagging load imbalance
     across sweep workers at a glance.
  3. Top-N slowest cells — the longest sweep/cell spans, with the cell's
     global grid index (the span's arg) and owning worker. These are the
     cells to look at first when a sweep is slow. --top N (default 5).

Exit status: 0 on success, 1 when the file is missing or not a valid
trace document, 2 on a usage error.
"""
import json
import sys


def fmt_ms(us):
    return f"{us / 1000.0:.3f}"


def table(rows, header):
    widths = [len(h) for h in header]
    for r in rows:
        widths = [max(w, len(v)) for w, v in zip(widths, r)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def main(argv):
    top_n = 5
    paths = []
    it = iter(argv[1:])
    for a in it:
        if a == "--top":
            value = next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                print("--top needs a positive integer", file=sys.stderr)
                return 2
            top_n = int(value)
        elif a.startswith("--"):
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = paths[0]

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {path}: {e}", file=sys.stderr)
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"FAIL: {path}: no traceEvents array — not a Chrome trace "
              "document", file=sys.stderr)
        return 1

    thread_names = {}
    phases = {}  # name -> [count, total_us, max_us]
    workers = {}  # tid -> [events, busy_us]
    cells = []  # (dur_us, arg, tid)
    for ev in events:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            thread_names[ev.get("tid")] = ev.get("args", {}).get("name", "?")
        elif ph == "X":
            name = ev.get("name", "?")
            dur = ev.get("dur", 0)
            if not isinstance(dur, (int, float)):
                continue
            p = phases.setdefault(name, [0, 0.0, 0.0])
            p[0] += 1
            p[1] += dur
            p[2] = max(p[2], dur)
            w = workers.setdefault(ev.get("tid"), [0, 0.0, 0.0])
            w[0] += 1
            # Busy time counts only outermost spans: chunks own their cells
            # (and cells own their engine phases), so summing every span
            # would bill the same wall time up to three times. Threads with
            # no chunk/eval spans (e.g. `run --trace-out`) fall back to the
            # engine-phase sum.
            if name in ("sweep/chunk", "sched/eval"):
                w[1] += dur
            elif name.startswith("engine/"):
                w[2] += dur
            if name == "sweep/cell":
                cells.append((dur, ev.get("args", {}).get("arg"), ev.get("tid")))

    if not phases:
        print(f"{path}: no complete ('X') events — the run captured no spans")
        return 0

    print(f"{path}: {sum(p[0] for p in phases.values())} span(s), "
          f"{len(workers)} thread(s)")
    print()
    rows = [(name, str(p[0]), fmt_ms(p[1]), fmt_ms(p[1] / p[0]), fmt_ms(p[2]))
            for name, p in sorted(phases.items(), key=lambda kv: -kv[1][1])]
    print(table(rows, ("phase", "count", "total ms", "mean ms", "max ms")))
    print()

    rows = []
    for tid in sorted(workers, key=lambda t: (t is None, t)):
        ev_count, chunk_busy, engine_busy = workers[tid]
        busy = chunk_busy if chunk_busy > 0 else engine_busy
        rows.append((thread_names.get(tid, f"tid {tid}"), str(ev_count),
                     fmt_ms(busy)))
    print(table(rows, ("thread", "events", "busy ms (outermost spans)")))

    if cells:
        print()
        rows = [(str(arg), fmt_ms(dur), thread_names.get(tid, f"tid {tid}"))
                for dur, arg, tid in
                sorted(cells, key=lambda c: -c[0])[:top_n]]
        print(table(rows, ("slowest cells (grid index)", "ms", "worker")))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        sys.exit(0)
