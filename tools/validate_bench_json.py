#!/usr/bin/env python3
"""Validate a BENCH_results.json file against the schema in docs/BENCHMARKS.md.

Compatibility shim: the validator now lives in validate_json.py, which
handles every report schema behind the shared v2 envelope. This entry
point pins --schema bench and forwards everything else unchanged.

Usage: validate_bench_json.py PATH [--require-ok] [--require-cases N]
"""
import sys

import validate_json


def main(argv):
    return validate_json.main([argv[0], "--schema", "bench"] + argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
