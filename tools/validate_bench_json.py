#!/usr/bin/env python3
"""Validate a BENCH_results.json file against the schema in docs/BENCHMARKS.md.

Usage: validate_bench_json.py PATH [--require-ok] [--require-cases N]

Exits 0 when the document is schema-valid (and, with --require-ok, when the
run's overall verdict is ok; with --require-cases, when at least N cases are
present). Prints every violation found, not just the first.
"""
import json
import re
import sys

SCHEMA_VERSION = 1

TOP_FIELDS = {
    "schema_version": int,
    "tool": str,
    "git_sha": str,
    "threads": int,
    "total_cases": int,
    "all_ok": bool,
    "all_deterministic": bool,
    "cases": list,
    "ok": bool,
}

CASE_FIELDS = {
    "name": str,
    "repeats": int,
    "warmup": int,
    "wall_ms": list,
    "min_ms": (int, float),
    "median_ms": (int, float),
    "mean_ms": (int, float),
    "cells": int,
    "cells_per_sec": (int, float),
    "rounds": int,
    "messages": int,
    "bytes": int,
    "digest": str,
    "deterministic": bool,
    "ok": bool,
}

DIGEST_RE = re.compile(r"^[0-9a-f]{16}$")


def check_fields(obj, fields, where, errors):
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
            continue
        # bool is an int subclass in Python; require exact bools where asked.
        value = obj[key]
        if types is int and isinstance(value, bool):
            errors.append(f"{where}: field '{key}' must be an integer, got bool")
        elif types is bool:
            if not isinstance(value, bool):
                errors.append(f"{where}: field '{key}' must be a bool")
        elif not isinstance(value, types):
            errors.append(f"{where}: field '{key}' has wrong type {type(value).__name__}")
    for key in obj:
        if key not in fields:
            errors.append(f"{where}: unknown field '{key}' (schema v{SCHEMA_VERSION})")


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top level: expected a JSON object"]
    check_fields(doc, TOP_FIELDS, "top level", errors)

    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"top level: schema_version {doc.get('schema_version')!r}, "
                      f"expected {SCHEMA_VERSION}")
    if doc.get("tool") != "bsm-bench":
        errors.append(f"top level: tool {doc.get('tool')!r}, expected 'bsm-bench'")
    if isinstance(doc.get("threads"), int) and doc["threads"] < 1:
        errors.append("top level: threads must be >= 1 (the report records the "
                      "resolved count, never 0)")

    cases = doc.get("cases", [])
    if isinstance(doc.get("total_cases"), int) and doc["total_cases"] != len(cases):
        errors.append(f"top level: total_cases {doc['total_cases']} != len(cases) {len(cases)}")

    seen = set()
    for i, case in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(case, dict):
            errors.append(f"{where}: expected an object")
            continue
        check_fields(case, CASE_FIELDS, where, errors)
        name = case.get("name", "")
        if isinstance(name, str):
            where = f"cases[{i}] ({name})"
            if "/" not in name:
                errors.append(f"{where}: name must be 'group/case'")
            if name in seen:
                errors.append(f"{where}: duplicate case name")
            seen.add(name)
        if isinstance(case.get("digest"), str) and not DIGEST_RE.match(case["digest"]):
            errors.append(f"{where}: digest must be 16 lowercase hex digits")
        wall = case.get("wall_ms", [])
        if isinstance(wall, list):
            if not all(isinstance(x, (int, float)) and not isinstance(x, bool) for x in wall):
                errors.append(f"{where}: wall_ms must contain only numbers")
            elif isinstance(case.get("repeats"), int) and len(wall) != case["repeats"]:
                errors.append(f"{where}: len(wall_ms) {len(wall)} != repeats {case['repeats']}")
            elif wall:
                lo, hi = min(wall), max(wall)
                for key, bound in (("min_ms", lo), ("median_ms", None), ("mean_ms", None)):
                    v = case.get(key)
                    if isinstance(v, (int, float)) and not lo - 1e-9 <= v <= hi + 1e-9:
                        errors.append(f"{where}: {key} {v} outside wall_ms range [{lo}, {hi}]")

    expected_ok = doc.get("all_ok") and doc.get("all_deterministic")
    if isinstance(doc.get("ok"), bool) and doc["ok"] != bool(expected_ok):
        errors.append("top level: ok must equal all_ok && all_deterministic")
    return errors


def main(argv):
    require_ok = False
    require_cases = 0
    args = []
    it = iter(argv[1:])
    for a in it:
        if a == "--require-ok":
            require_ok = True
        elif a == "--require-cases":
            try:
                require_cases = int(next(it))
            except (StopIteration, ValueError):
                print("--require-cases needs an integer", file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {args[0]}: {e}", file=sys.stderr)
        return 1

    errors = validate(doc)
    if require_ok and not doc.get("ok"):
        errors.append("run verdict: ok is false (--require-ok)")
    if require_cases and len(doc.get("cases", [])) < require_cases:
        errors.append(f"run verdict: only {len(doc.get('cases', []))} cases, "
                      f"need >= {require_cases} (--require-cases)")

    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"OK: {args[0]}: schema v{SCHEMA_VERSION}, {len(doc.get('cases', []))} case(s), "
          f"git {doc.get('git_sha')}, ok={doc.get('ok')}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
