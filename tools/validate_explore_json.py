#!/usr/bin/env python3
"""Validate a `bsm_cli explore` JSON document.

Compatibility shim: the validator now lives in validate_sched_json.py,
which handles both the explore and fuzz schemas. This entry point pins
--schema explore and forwards everything else unchanged.

Usage: validate_explore_json.py PATH [--require-no-violations]
"""
import sys

import validate_sched_json


def main(argv):
    return validate_sched_json.main([argv[0], "--schema", "explore"] + argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
