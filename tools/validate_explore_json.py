#!/usr/bin/env python3
"""Validate a `bsm_cli explore` JSON document (schema in docs/BENCHMARKS.md).

Usage: validate_explore_json.py PATH [--require-no-violations]

Exits 0 when the document is schema-valid (and, with
--require-no-violations, when the search found zero property violations —
what CI's explorer smoke step asserts for the in-envelope schedule space).
Prints every violation found, not just the first.
"""
import json
import sys

SCENARIO_FIELDS = {
    "topology": str,
    "auth": bool,
    "k": int,
    "tl": int,
    "tr": int,
    "seed": int,
    "battery": str,
    "adversaries": int,
}

OPTIONS_FIELDS = {
    "max_depth": int,
    "max_delay": int,
    "horizon": int,
    "drop": bool,
    "delay": bool,
    "reorder": bool,
    "corrupt_adjacent_only": bool,
    "max_schedules": int,
}

SCHEDULES_FIELDS = {
    "explored": int,
    "pruned": int,
    "violations": int,
    "depth_reached": int,
    "truncated": bool,
}

COUNTEREXAMPLE_FIELDS = {
    "trace": str,
    "ops": int,
    "shrink_runs": int,
    "views": list,
}


def check_fields(obj, fields, where, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected an object")
        return
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
            continue
        value = obj[key]
        if types is int and isinstance(value, bool):
            errors.append(f"{where}: field '{key}' must be an integer, got bool")
        elif types is bool and not isinstance(value, bool):
            errors.append(f"{where}: field '{key}' must be a bool")
        elif not isinstance(value, types):
            errors.append(f"{where}: field '{key}' has wrong type {type(value).__name__}")
    for key in obj:
        if key not in fields:
            errors.append(f"{where}: unknown field '{key}'")


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top level: expected a JSON object"]
    for key in ("scenario", "options", "schedules", "all_satisfied", "counterexample"):
        if key not in doc:
            errors.append(f"top level: missing field '{key}'")
    for key in doc:
        if key not in ("scenario", "options", "schedules", "all_satisfied", "counterexample"):
            errors.append(f"top level: unknown field '{key}'")

    check_fields(doc.get("scenario", {}), SCENARIO_FIELDS, "scenario", errors)
    check_fields(doc.get("options", {}), OPTIONS_FIELDS, "options", errors)
    check_fields(doc.get("schedules", {}), SCHEDULES_FIELDS, "schedules", errors)

    if not isinstance(doc.get("all_satisfied"), bool):
        errors.append("top level: all_satisfied must be a bool")

    sched = doc.get("schedules", {})
    if isinstance(sched, dict):
        if isinstance(sched.get("explored"), int) and sched["explored"] < 1:
            errors.append("schedules: explored must be >= 1 (the unperturbed "
                          "schedule always runs)")
        violations = sched.get("violations")
        if isinstance(violations, int) and isinstance(doc.get("all_satisfied"), bool):
            if doc["all_satisfied"] != (violations == 0):
                errors.append("top level: all_satisfied must equal (violations == 0)")

    counterexample = doc.get("counterexample")
    if counterexample is not None:
        check_fields(counterexample, COUNTEREXAMPLE_FIELDS, "counterexample", errors)
        if isinstance(counterexample, dict):
            views = counterexample.get("views", [])
            if isinstance(views, list) and not all(
                    isinstance(v, int) and not isinstance(v, bool) for v in views):
                errors.append("counterexample: views must contain only integers")
            trace = counterexample.get("trace")
            ops = counterexample.get("ops")
            if isinstance(trace, str) and isinstance(ops, int):
                op_count = 0 if trace == "" else trace.count(";") + 1
                if op_count != ops:
                    errors.append(f"counterexample: ops {ops} != trace op count {op_count}")
    if isinstance(doc.get("all_satisfied"), bool) and doc["all_satisfied"] \
            and counterexample is not None:
        errors.append("top level: a satisfied search must not carry a counterexample")
    return errors


def main(argv):
    require_clean = False
    args = []
    for a in argv[1:]:
        if a == "--require-no-violations":
            require_clean = True
        elif a.startswith("--"):
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {args[0]}: {e}", file=sys.stderr)
        return 1

    errors = validate(doc)
    if require_clean and doc.get("schedules", {}).get("violations") != 0:
        errors.append("run verdict: violations != 0 (--require-no-violations)")

    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    if errors:
        return 1
    sched = doc.get("schedules", {})
    print(f"OK: {args[0]}: {sched.get('explored')} schedule(s) explored, "
          f"{sched.get('pruned')} pruned, {sched.get('violations')} violation(s), "
          f"all_satisfied={doc.get('all_satisfied')}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
