#!/usr/bin/env python3
"""Validate any bsm machine-readable report — one validator, every schema.

Usage: validate_json.py PATH [--schema bench|sweep|explore|fuzz|replay|auto]
                             [--require-ok] [--require-cases N]
                             [--require-no-violations] [--min-execs N]
                             [--require-metrics]

Since schema v2 every report leads with the shared envelope
(schema_version, subcommand, git_sha, and — where the document is not
contractually byte-identical across thread counts — threads), so one
validator can dispatch on `subcommand` instead of one script per schema
guessing from shape. The old entry points (validate_bench_json.py,
validate_sched_json.py, validate_explore_json.py) forward here.

Schemas (documented field-by-field in docs/BENCHMARKS.md):
  bench    BENCH_results.json from `bsm_cli bench` / the bench/ binaries
  sweep    `bsm_cli sweep`: the inline JSON document, the --out summary
           report, or a JSONL shard document (the three are auto-told-apart)
  explore  `bsm_cli explore` report
  fuzz     `bsm_cli fuzz` report
  replay   `explore/fuzz --replay` document (envelope-free by contract)
  auto     dispatch on the envelope (default)

Predicates (each only meaningful for the schema that defines it):
  --require-ok             bench: overall ok; sweep: all_properties_held;
                           replay: all_properties
  --require-cases N        bench: at least N cases present
  --require-no-violations  explore/fuzz: zero property violations;
                           replay: no round_limit_hit
  --min-execs N            explore/fuzz: the search spent >= N runs
  --require-metrics        sweep/explore/fuzz: the optional `metrics` block
                           (from --metrics / --trace-out) must be present

Exits 0 when the document is schema-valid and every requested predicate
holds. Prints every violation found, not just the first.
"""
import json
import re
import sys

SCHEMA_VERSION = 2

DIGEST_RE = re.compile(r"^[0-9a-f]{16}$")
SHARD_RE = re.compile(r"^[0-9]+/[0-9]+$")

# ---------------------------------------------------------------- helpers


def check_fields(obj, fields, where, errors, extra_ok=()):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected an object")
        return
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
            continue
        # bool is an int subclass in Python; require exact bools where asked.
        value = obj[key]
        if types is int and isinstance(value, bool):
            errors.append(f"{where}: field '{key}' must be an integer, got bool")
        elif types is bool:
            if not isinstance(value, bool):
                errors.append(f"{where}: field '{key}' must be a bool")
        elif not isinstance(value, types):
            errors.append(f"{where}: field '{key}' has wrong type {type(value).__name__}")
    for key in obj:
        if key not in fields and key not in extra_ok:
            errors.append(f"{where}: unknown field '{key}' (schema v{SCHEMA_VERSION})")


ENVELOPE_FIELDS = {
    "schema_version": int,
    "subcommand": str,
    "git_sha": str,
}


def check_envelope(doc, subcommand, where, errors, threads=True):
    """The shared report envelope. `threads=False` for documents that are
    contractually byte-identical across thread counts (fuzz, JSONL header)."""
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{where}: schema_version {doc.get('schema_version')!r}, "
                      f"expected {SCHEMA_VERSION}")
    if doc.get("subcommand") != subcommand:
        errors.append(f"{where}: subcommand {doc.get('subcommand')!r}, "
                      f"expected '{subcommand}'")
    if not isinstance(doc.get("git_sha"), str) or not doc.get("git_sha"):
        errors.append(f"{where}: git_sha must be a non-empty string")
    if threads:
        t = doc.get("threads")
        if not isinstance(t, int) or isinstance(t, bool) or t < 1:
            errors.append(f"{where}: threads must be an integer >= 1 (the report "
                          "records the resolved count, never 0)")
    elif "threads" in doc:
        errors.append(f"{where}: '{subcommand}' reports are byte-identical across "
                      "thread counts and must not carry 'threads'")


# ------------------------------------------------------------------ bench

BENCH_TOP_FIELDS = {
    **ENVELOPE_FIELDS,
    "threads": int,
    "tool": str,
    "total_cases": int,
    "all_ok": bool,
    "all_deterministic": bool,
    "cases": list,
    "ok": bool,
}

BENCH_CASE_FIELDS = {
    "name": str,
    "repeats": int,
    "warmup": int,
    "wall_ms": list,
    "min_ms": (int, float),
    "median_ms": (int, float),
    "mean_ms": (int, float),
    "cells": int,
    "cells_per_sec": (int, float),
    "rounds": int,
    "messages": int,
    "bytes": int,
    "digest": str,
    "deterministic": bool,
    "ok": bool,
}


def validate_bench(doc):
    errors = []
    check_fields(doc, BENCH_TOP_FIELDS, "top level", errors)
    check_envelope(doc, "bench", "top level", errors)
    if doc.get("tool") != "bsm-bench":
        errors.append(f"top level: tool {doc.get('tool')!r}, expected 'bsm-bench'")

    cases = doc.get("cases", [])
    if isinstance(doc.get("total_cases"), int) and doc["total_cases"] != len(cases):
        errors.append(f"top level: total_cases {doc['total_cases']} != len(cases) {len(cases)}")

    seen = set()
    for i, case in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(case, dict):
            errors.append(f"{where}: expected an object")
            continue
        check_fields(case, BENCH_CASE_FIELDS, where, errors)
        name = case.get("name", "")
        if isinstance(name, str):
            where = f"cases[{i}] ({name})"
            if "/" not in name:
                errors.append(f"{where}: name must be 'group/case'")
            if name in seen:
                errors.append(f"{where}: duplicate case name")
            seen.add(name)
        if isinstance(case.get("digest"), str) and not DIGEST_RE.match(case["digest"]):
            errors.append(f"{where}: digest must be 16 lowercase hex digits")
        wall = case.get("wall_ms", [])
        if isinstance(wall, list):
            if not all(isinstance(x, (int, float)) and not isinstance(x, bool) for x in wall):
                errors.append(f"{where}: wall_ms must contain only numbers")
            elif isinstance(case.get("repeats"), int) and len(wall) != case["repeats"]:
                errors.append(f"{where}: len(wall_ms) {len(wall)} != repeats {case['repeats']}")
            elif wall:
                lo, hi = min(wall), max(wall)
                for key in ("min_ms", "median_ms", "mean_ms"):
                    v = case.get(key)
                    if isinstance(v, (int, float)) and not lo - 1e-9 <= v <= hi + 1e-9:
                        errors.append(f"{where}: {key} {v} outside wall_ms range [{lo}, {hi}]")

    expected_ok = doc.get("all_ok") and doc.get("all_deterministic")
    if isinstance(doc.get("ok"), bool) and doc["ok"] != bool(expected_ok):
        errors.append("top level: ok must equal all_ok && all_deterministic")
    return errors


# ---------------------------------------------------------------- metrics

# The observability recorder's versioned report block (docs/OBSERVABILITY.md),
# optionally present on sweep/explore/fuzz reports when the run enabled
# --metrics or --trace-out. Keys are pinned against src/obs/recorder.cpp.
METRICS_VERSION = 1

METRICS_COUNTER_KEYS = (
    "engine_rounds", "cells_done", "chunks", "steals", "idle_exits",
    "oracle_hits", "oracle_misses", "oracle_inserts", "cells_emitted",
    "checkpoints", "flushes", "okv_saved_entries", "okv_loaded_entries",
    "evals",
)

METRICS_SPAN_KEYS = (
    "engine_assemble", "engine_policy", "engine_deliver", "engine_on_round",
    "sweep_chunk", "sweep_cell", "oracle_hit", "oracle_miss", "shard_emit",
    "shard_checkpoint", "shard_flush", "okv_save", "okv_load", "sched_eval",
)

METRICS_TOP_FIELDS = {
    "version": int,
    "spans": int,
    "spans_dropped": int,
    "counters": dict,
    "histograms": dict,
}

METRICS_HIST_FIELDS = {
    "count": int,
    "p50_ns": int,
    "p90_ns": int,
    "p99_ns": int,
    "max_ns": int,
}


def validate_metrics(doc, errors):
    """Validate the optional top-level `metrics` block when present."""
    metrics = doc.get("metrics")
    if metrics is None:
        return
    check_fields(metrics, METRICS_TOP_FIELDS, "metrics", errors)
    if not isinstance(metrics, dict):
        return
    if metrics.get("version") != METRICS_VERSION:
        errors.append(f"metrics: version {metrics.get('version')!r}, "
                      f"expected {METRICS_VERSION}")
    counters = metrics.get("counters", {})
    check_fields(counters, {k: int for k in METRICS_COUNTER_KEYS},
                 "metrics.counters", errors)
    hists = metrics.get("histograms", {})
    if isinstance(hists, dict):
        for key in METRICS_SPAN_KEYS:
            if key not in hists:
                errors.append(f"metrics.histograms: missing span '{key}'")
                continue
            where = f"metrics.histograms.{key}"
            check_fields(hists[key], METRICS_HIST_FIELDS, where, errors)
            h = hists[key]
            if isinstance(h, dict) and all(
                    isinstance(h.get(f), int) and not isinstance(h.get(f), bool)
                    for f in METRICS_HIST_FIELDS):
                if not h["p50_ns"] <= h["p90_ns"] <= h["p99_ns"] <= h["max_ns"]:
                    errors.append(f"{where}: percentiles must be non-decreasing "
                                  "up to max_ns")
                if h["count"] == 0 and h["max_ns"] != 0:
                    errors.append(f"{where}: an empty histogram must report 0 ns")
        for key in hists:
            if key not in METRICS_SPAN_KEYS:
                errors.append(f"metrics.histograms: unknown span '{key}'")


# ------------------------------------------------------------------ sweep

SCHEDULER_FIELDS = {"threads": int, "chunks": int, "steals": int}
ORACLE_FIELDS = {"hits": int, "misses": int, "inserts": int, "hit_rate": (int, float)}

SWEEP_INLINE_FIELDS = {
    **ENVELOPE_FIELDS,
    "threads": int,
    "cells": list,
    "total_cells": int,
    "ran": int,
    "scheduler": dict,
    "oracle_cache": dict,
    "all_properties_held": bool,
}

SWEEP_SUMMARY_FIELDS = {
    **ENVELOPE_FIELDS,
    "threads": int,
    "grid_digest": str,
    "total_cells": int,
    "shard": str,
    "begin": int,
    "end": int,
    "out": str,
    "resume": bool,
    "resumed_complete": bool,
    "cells": int,
    "ran": int,
    "emitted": int,
    "resumed": int,
    "oracle_loaded": int,
    "oracle_saved": int,
    "scheduler": dict,
    "oracle_cache": dict,
    "all_properties_held": bool,
}

CELL_BASE_FIELDS = {
    "topology": str,
    "auth": bool,
    "k": int,
    "tl": int,
    "tr": int,
    "input_seed": int,
    "adversaries": int,
    "solvable": bool,
}

CELL_RAN_FIELDS = {
    "protocol": str,
    "rounds": int,
    "messages": int,
    "bytes": int,
    "properties": dict,
    "all_properties": bool,
}

# Round-complexity verdict, emitted for partial-synchrony (sched "gst")
# cells and for any run cut off before termination. Optional as a group:
# pre-existing documents without them stay valid.
CELL_LIVENESS_FIELDS = {
    "terminated": bool,
    "rounds_to_termination": int,
    "round_limit_hit": bool,
}

PROPERTY_FIELDS = {
    "termination": bool,
    "symmetry": bool,
    "stability": bool,
    "non_competition": bool,
}


def check_liveness(obj, where, errors):
    """Validate the optional round-complexity field group when any of it is
    present: all three fields together, typed, and a round_limit_hit run is
    by definition one the guard cut off while undecided."""
    if not any(k in obj for k in CELL_LIVENESS_FIELDS):
        return
    check_fields({k: v for k, v in obj.items() if k in CELL_LIVENESS_FIELDS},
                 CELL_LIVENESS_FIELDS, where, errors)
    if obj.get("round_limit_hit") is True and obj.get("terminated") is True:
        errors.append(f"{where}: round_limit_hit implies terminated == false")


def validate_cell(cell, where, errors):
    if not isinstance(cell, dict):
        errors.append(f"{where}: expected an object")
        return True
    extra = set(CELL_RAN_FIELDS) | set(CELL_LIVENESS_FIELDS) | {
        "sched", "sched_seed", "gst", "type", "cell"}
    check_fields(cell, CELL_BASE_FIELDS, where, errors, extra_ok=extra)
    if "gst" in cell:
        if cell.get("sched") != "gst":
            errors.append(f"{where}: field 'gst' requires sched \"gst\"")
        if not isinstance(cell["gst"], int) or isinstance(cell["gst"], bool):
            errors.append(f"{where}: field 'gst' must be an integer")
    elif cell.get("sched") == "gst":
        errors.append(f"{where}: sched \"gst\" cells must carry the 'gst' field")
    all_ok = True
    if cell.get("solvable") is True and "protocol" in cell:
        check_fields({k: v for k, v in cell.items() if k in CELL_RAN_FIELDS},
                     CELL_RAN_FIELDS, where, errors)
        check_fields(cell.get("properties", {}), PROPERTY_FIELDS, f"{where}.properties", errors)
        check_liveness(cell, where, errors)
        if cell.get("sched") == "gst" and \
                not all(k in cell for k in CELL_LIVENESS_FIELDS):
            errors.append(f"{where}: ran sched \"gst\" cells must carry the "
                          "round-complexity fields")
        all_ok = cell.get("all_properties") is True
    return all_ok


def validate_sweep_json(doc):
    """The inline document or the --out summary report (told apart by the
    type of `cells`: the inline document carries the per-cell array)."""
    errors = []
    if isinstance(doc.get("cells"), list):
        check_fields(doc, SWEEP_INLINE_FIELDS, "top level", errors,
                     extra_ok=("metrics",))
        check_envelope(doc, "sweep", "top level", errors)
        cells = doc["cells"]
        if isinstance(doc.get("total_cells"), int) and doc["total_cells"] != len(cells):
            errors.append(f"top level: total_cells {doc['total_cells']} != "
                          f"len(cells) {len(cells)}")
        all_ok = True
        for i, cell in enumerate(cells):
            all_ok &= validate_cell(cell, f"cells[{i}]", errors)
        if isinstance(doc.get("all_properties_held"), bool) and \
                doc["all_properties_held"] != all_ok:
            errors.append("top level: all_properties_held disagrees with the cells")
    else:
        check_fields(doc, SWEEP_SUMMARY_FIELDS, "top level", errors,
                     extra_ok=("metrics",))
        check_envelope(doc, "sweep", "top level", errors)
        grid = doc.get("grid_digest")
        if isinstance(grid, str) and not DIGEST_RE.match(grid):
            errors.append("top level: grid_digest must be 16 lowercase hex digits")
        shard = doc.get("shard")
        if isinstance(shard, str) and not SHARD_RE.match(shard):
            errors.append(f"top level: shard {shard!r} is not i/N")
        begin, end, total = doc.get("begin"), doc.get("end"), doc.get("total_cells")
        if all(isinstance(v, int) for v in (begin, end, total)) and \
                not begin <= end <= total:
            errors.append(f"top level: shard range [{begin}, {end}) does not fit "
                          f"total_cells {total}")
        if isinstance(doc.get("cells"), int) and isinstance(begin, int) and \
                isinstance(end, int) and doc["cells"] != end - begin:
            errors.append(f"top level: cells {doc['cells']} != end - begin {end - begin}")
    check_fields(doc.get("scheduler", {}), SCHEDULER_FIELDS, "scheduler", errors)
    check_fields(doc.get("oracle_cache", {}), ORACLE_FIELDS, "oracle_cache", errors)
    validate_metrics(doc, errors)
    return errors


HEADER_FIELDS = {
    "type": str,
    **ENVELOPE_FIELDS,
    "grid_digest": str,
    "total_cells": int,
    "checkpoint_every": int,
    "shard": str,
    "begin": int,
    "end": int,
}

SUMMARY_FIELDS = {"type": str, "cells": int, "ran": int, "all_properties_held": bool}


def validate_sweep_jsonl(text, path):
    """A `sweep --out` shard document: header, cells in grid order with
    interleaved checkpoints, then (when complete) the summary."""
    errors = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        errors.append(f"line {len(lines)}: the last line is not newline-terminated "
                      "(torn write — rerun with --resume)")
    parsed = []
    for i, line in enumerate(lines):
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as e:
            errors.append(f"line {i + 1}: not JSON: {e}")
            return errors
    if not parsed or parsed[0].get("type") != "header":
        errors.append("line 1: expected the header line")
        return errors

    header = parsed[0]
    check_fields(header, HEADER_FIELDS, "header", errors)
    # The JSONL header is the document whose bytes must not depend on the
    # thread count, so it must not carry `threads`.
    check_envelope(header, "sweep", "header", errors, threads=False)
    grid = header.get("grid_digest")
    if isinstance(grid, str) and not DIGEST_RE.match(grid):
        errors.append("header: grid_digest must be 16 lowercase hex digits")
    begin = header.get("begin", 0)
    end = header.get("end", 0)
    every = header.get("checkpoint_every", 0)
    if not (isinstance(begin, int) and isinstance(end, int) and
            isinstance(header.get("total_cells"), int) and
            begin <= end <= header["total_cells"]):
        errors.append("header: need begin <= end <= total_cells")
        return errors
    if not isinstance(every, int) or every < 1:
        errors.append("header: checkpoint_every must be >= 1")
        return errors

    next_cell = begin
    summary = None
    for i, obj in enumerate(parsed[1:], start=2):
        kind = obj.get("type")
        if summary is not None:
            errors.append(f"line {i}: data after the summary line")
            break
        if kind == "checkpoint":
            if obj.get("next_cell") != next_cell or next_cell % every != 0:
                errors.append(f"line {i}: checkpoint next_cell {obj.get('next_cell')} "
                              f"out of place (expected {next_cell}, period {every})")
        elif kind == "cell":
            if obj.get("cell") != next_cell:
                errors.append(f"line {i}: cell index {obj.get('cell')}, "
                              f"expected {next_cell} (grid order)")
            validate_cell(obj, f"line {i}", errors)
            next_cell += 1
        elif kind == "summary":
            summary = obj
            check_fields(obj, SUMMARY_FIELDS, f"line {i}", errors)
        else:
            errors.append(f"line {i}: unknown line type {kind!r}")
    if summary is None:
        errors.append(f"{path}: incomplete shard (no summary line) — "
                      "rerun it, or rerun with --resume")
    else:
        if next_cell != end:
            errors.append(f"summary: document holds cells [{begin}, {next_cell}), "
                          f"header promised [{begin}, {end})")
        if isinstance(summary.get("cells"), int) and summary["cells"] != end - begin:
            errors.append(f"summary: cells {summary['cells']} != end - begin {end - begin}")
    return errors


# ----------------------------------------------------------- explore/fuzz

SCENARIO_FIELDS = {
    "topology": str,
    "auth": bool,
    "k": int,
    "tl": int,
    "tr": int,
    "seed": int,
    "battery": str,
    "adversaries": int,
}

EXPLORE_OPTIONS_FIELDS = {
    "max_depth": int,
    "max_delay": int,
    "horizon": int,
    "drop": bool,
    "delay": bool,
    "reorder": bool,
    "corrupt_adjacent_only": bool,
    "max_schedules": int,
}

FUZZ_OPTIONS_FIELDS = {
    "fuzz_seed": int,
    "max_execs": int,
    "batch": int,
    "max_ops": int,
    "max_delay": int,
    "horizon": int,
    "drop": bool,
    "delay": bool,
    "reorder": bool,
    "omission_budget": int,
    "corrupt_adjacent_only": bool,
    "corpus_dir": str,
}

SCHEDULES_FIELDS = {
    "explored": int,
    "pruned": int,
    "violations": int,
    "depth_reached": int,
    "truncated": bool,
}

FUZZ_FIELDS = {
    "execs": int,
    "corpus_size": int,
    "corpus_loaded": int,
    "corpus_saved": int,
    "coverage": int,
    "interesting": int,
    "violations": int,
}

COUNTEREXAMPLE_FIELDS = {
    "trace": str,
    "ops": int,
    "shrink_runs": int,
    "views": list,
}


# ------------------------------------------------------------------ replay

REPLAY_FIELDS = {
    "trace": str,
    "ops": int,
    "rounds": int,
    "messages": int,
    "delivered": int,
    "dropped": int,
    "all_properties": bool,
    **CELL_LIVENESS_FIELDS,
    "views": list,
}


def validate_replay(doc):
    """An `explore --replay` / `fuzz --replay` document. Deliberately
    envelope-free: its bytes are a pure function of (scenario, horizon,
    trace), so it carries no git SHA or thread count."""
    errors = []
    for key in doc:
        if key != "replay":
            errors.append(f"top level: unknown field '{key}'")
    rep = doc.get("replay")
    if not isinstance(rep, dict):
        errors.append("top level: 'replay' must be an object")
        return errors
    check_fields(rep, REPLAY_FIELDS, "replay", errors)
    check_liveness(rep, "replay", errors)
    views = rep.get("views", [])
    if isinstance(views, list) and not all(
            isinstance(v, int) and not isinstance(v, bool) for v in views):
        errors.append("replay: views must contain only integers")
    trace = rep.get("trace")
    ops = rep.get("ops")
    if isinstance(trace, str) and isinstance(ops, int):
        op_count = 0 if trace == "" else trace.count(";") + 1
        if op_count != ops:
            errors.append(f"replay: ops {ops} != trace op count {op_count}")
    return errors


def counters_block(doc, schema):
    """The per-schema counters object ('schedules' or 'fuzz')."""
    block = doc.get("fuzz" if schema == "fuzz" else "schedules", {})
    return block if isinstance(block, dict) else {}


def validate_sched(doc, schema):
    errors = []
    counters_key = "fuzz" if schema == "fuzz" else "schedules"
    top = set(ENVELOPE_FIELDS) | {
        "scenario", "options", counters_key, "all_satisfied", "counterexample",
        "metrics"}
    if schema == "explore":
        top.add("threads")
    for key in ("scenario", "options", counters_key, "all_satisfied", "counterexample"):
        if key not in doc:
            errors.append(f"top level: missing field '{key}'")
    for key in doc:
        if key not in top:
            errors.append(f"top level: unknown field '{key}'")
    # The fuzz report is contractually bit-identical across thread counts,
    # so its envelope omits `threads`; explore's keeps it.
    check_envelope(doc, schema, "top level", errors, threads=(schema == "explore"))

    check_fields(doc.get("scenario", {}), SCENARIO_FIELDS, "scenario", errors)
    if schema == "fuzz":
        check_fields(doc.get("options", {}), FUZZ_OPTIONS_FIELDS, "options", errors)
        check_fields(doc.get("fuzz", {}), FUZZ_FIELDS, "fuzz", errors)
    else:
        check_fields(doc.get("options", {}), EXPLORE_OPTIONS_FIELDS, "options", errors)
        check_fields(doc.get("schedules", {}), SCHEDULES_FIELDS, "schedules", errors)

    if not isinstance(doc.get("all_satisfied"), bool):
        errors.append("top level: all_satisfied must be a bool")

    counters = counters_block(doc, schema)
    ran = counters.get("execs" if schema == "fuzz" else "explored")
    if isinstance(ran, int) and ran < 1:
        errors.append(f"{counters_key}: the unperturbed schedule always runs, "
                      "so the run counter must be >= 1")
    violations = counters.get("violations")
    if isinstance(violations, int) and isinstance(doc.get("all_satisfied"), bool):
        if doc["all_satisfied"] != (violations == 0):
            errors.append("top level: all_satisfied must equal (violations == 0)")
    if schema == "fuzz":
        size = counters.get("corpus_size")
        coverage = counters.get("coverage")
        if isinstance(size, int) and isinstance(coverage, int) and 0 < coverage < size:
            errors.append("fuzz: every corpus entry holds at least one coverage "
                          "point, so coverage must be >= corpus_size")

    counterexample = doc.get("counterexample")
    if counterexample is not None:
        check_fields(counterexample, COUNTEREXAMPLE_FIELDS, "counterexample", errors)
        if isinstance(counterexample, dict):
            views = counterexample.get("views", [])
            if isinstance(views, list) and not all(
                    isinstance(v, int) and not isinstance(v, bool) for v in views):
                errors.append("counterexample: views must contain only integers")
            trace = counterexample.get("trace")
            ops = counterexample.get("ops")
            if isinstance(trace, str) and isinstance(ops, int):
                op_count = 0 if trace == "" else trace.count(";") + 1
                if op_count != ops:
                    errors.append(f"counterexample: ops {ops} != trace op count {op_count}")
    if isinstance(doc.get("all_satisfied"), bool) and doc["all_satisfied"] \
            and counterexample is not None:
        errors.append("top level: a satisfied search must not carry a counterexample")
    validate_metrics(doc, errors)
    return errors


# ----------------------------------------------------------------- driver


def detect_schema(doc):
    sub = doc.get("subcommand")
    if sub in ("bench", "sweep", "explore", "fuzz"):
        return sub
    # Replay documents are envelope-free by contract (byte-identical
    # reproduction); everything else pre-envelope (v1) falls back to shape.
    if "replay" in doc:
        return "replay"
    if "tool" in doc:
        return "bench"
    if "fuzz" in doc:
        return "fuzz"
    if "schedules" in doc:
        return "explore"
    return "sweep"


def summarize(doc, schema, path):
    if schema == "bench":
        return (f"OK: {path} [bench]: {len(doc.get('cases', []))} case(s), "
                f"git {doc.get('git_sha')}, ok={doc.get('ok')}")
    if schema == "sweep":
        held = doc.get("all_properties_held")
        if isinstance(doc.get("cells"), list):
            return (f"OK: {path} [sweep]: {doc.get('total_cells')} cell(s), "
                    f"{doc.get('ran')} ran, all_properties_held={held}")
        return (f"OK: {path} [sweep shard {doc.get('shard')}]: "
                f"{doc.get('cells')} cell(s), {doc.get('ran')} ran, "
                f"all_properties_held={held}")
    if schema == "replay":
        rep = doc.get("replay", {})
        return (f"OK: {path} [replay]: {rep.get('ops')} op(s), "
                f"all_properties={rep.get('all_properties')}, "
                f"round_limit_hit={rep.get('round_limit_hit')}")
    counters = counters_block(doc, schema)
    if schema == "fuzz":
        return (f"OK: {path} [fuzz]: {counters.get('execs')} exec(s), "
                f"corpus {counters.get('corpus_size')}, "
                f"coverage {counters.get('coverage')}, "
                f"{counters.get('violations')} violation(s), "
                f"all_satisfied={doc.get('all_satisfied')}")
    return (f"OK: {path} [explore]: {counters.get('explored')} schedule(s) explored, "
            f"{counters.get('pruned')} pruned, {counters.get('violations')} violation(s), "
            f"all_satisfied={doc.get('all_satisfied')}")


def main(argv):
    require_ok = False
    require_cases = 0
    require_clean = False
    require_metrics = False
    min_execs = None
    schema = "auto"
    args = []
    it = iter(argv[1:])
    for a in it:
        if a == "--require-ok":
            require_ok = True
        elif a == "--require-cases":
            value = next(it, None)
            if value is None or not value.isdigit():
                print("--require-cases needs an integer", file=sys.stderr)
                return 2
            require_cases = int(value)
        elif a == "--require-no-violations":
            require_clean = True
        elif a == "--require-metrics":
            require_metrics = True
        elif a == "--min-execs":
            value = next(it, None)
            if value is None or not value.isdigit():
                print("--min-execs needs an integer value", file=sys.stderr)
                return 2
            min_execs = int(value)
        elif a == "--schema":
            value = next(it, None)
            if value not in ("bench", "sweep", "explore", "fuzz", "replay", "auto"):
                print("--schema must be bench, sweep, explore, fuzz, replay, or auto",
                      file=sys.stderr)
                return 2
            schema = value
        elif a.startswith("--"):
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]

    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"FAIL: {path}: {e}", file=sys.stderr)
        return 1

    # A JSONL shard document is not one JSON value; dispatch on its header.
    if text.startswith('{"type": "header"'):
        if schema not in ("sweep", "auto"):
            print(f"FAIL: {path}: a JSONL shard document is schema 'sweep', "
                  f"not '{schema}'", file=sys.stderr)
            return 1
        errors = validate_sweep_jsonl(text, path)
        if require_metrics:
            # The JSONL stream is contractually recorder-free: metrics land
            # only in the envelope report, never in the shard document.
            errors.append("run verdict: a JSONL shard document never carries "
                          "metrics (--require-metrics)")
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        if errors:
            return 1
        header = json.loads(text.split("\n", 1)[0])
        print(f"OK: {path} [sweep jsonl]: shard {header.get('shard')} of "
              f"{header.get('total_cells')} cell(s), git {header.get('git_sha')}")
        return 0

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"FAIL: {path}: {e}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"FAIL: {path}: top level: expected a JSON object", file=sys.stderr)
        return 1

    if schema == "auto":
        schema = detect_schema(doc)

    if schema == "bench":
        errors = validate_bench(doc)
        if require_ok and not doc.get("ok"):
            errors.append("run verdict: ok is false (--require-ok)")
        if require_cases and len(doc.get("cases", [])) < require_cases:
            errors.append(f"run verdict: only {len(doc.get('cases', []))} cases, "
                          f"need >= {require_cases} (--require-cases)")
    elif schema == "sweep":
        errors = validate_sweep_json(doc)
        if require_ok and doc.get("all_properties_held") is not True:
            errors.append("run verdict: all_properties_held is false (--require-ok)")
    elif schema == "replay":
        errors = validate_replay(doc)
        rep = doc.get("replay", {}) if isinstance(doc.get("replay"), dict) else {}
        if require_ok and rep.get("all_properties") is not True:
            errors.append("run verdict: all_properties is false (--require-ok)")
        if require_clean and rep.get("round_limit_hit") is not False:
            errors.append("run verdict: round_limit_hit (--require-no-violations)")
    else:
        errors = validate_sched(doc, schema)
        counters = counters_block(doc, schema)
        if require_clean and counters.get("violations") != 0:
            errors.append("run verdict: violations != 0 (--require-no-violations)")
        if min_execs is not None:
            ran = counters.get("execs" if schema == "fuzz" else "explored")
            if not isinstance(ran, int) or ran < min_execs:
                errors.append(f"run verdict: ran {ran} schedule(s), "
                              f"need >= {min_execs} (--min-execs)")

    if require_metrics:
        if schema not in ("sweep", "explore", "fuzz"):
            errors.append(f"run verdict: schema '{schema}' never carries "
                          "metrics (--require-metrics)")
        elif not isinstance(doc.get("metrics"), dict):
            errors.append("run verdict: no metrics block — run with --metrics "
                          "or --trace-out (--require-metrics)")

    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    if errors:
        return 1
    print(summarize(doc, schema, path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
