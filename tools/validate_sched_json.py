#!/usr/bin/env python3
"""Validate a `bsm_cli explore` or `bsm_cli fuzz` JSON document.

Usage: validate_sched_json.py PATH [--schema explore|fuzz|auto]
                                   [--require-no-violations] [--min-execs N]

Both schedule-search subcommands share the scenario/all_satisfied/
counterexample shape (documented in docs/BENCHMARKS.md); they differ in
the middle block (`schedules` for explore, `fuzz` for fuzz) and in the
options they echo back. --schema auto (the default) dispatches on which
block is present.

Exits 0 when the document is schema-valid and every requested predicate
holds: --require-no-violations asserts the search found zero property
violations (CI's in-envelope smoke), --min-execs N asserts the fuzz loop
actually spent its budget (guards against a silently truncated run).
Prints every violation found, not just the first.
"""
import json
import sys

SCENARIO_FIELDS = {
    "topology": str,
    "auth": bool,
    "k": int,
    "tl": int,
    "tr": int,
    "seed": int,
    "battery": str,
    "adversaries": int,
}

EXPLORE_OPTIONS_FIELDS = {
    "max_depth": int,
    "max_delay": int,
    "horizon": int,
    "drop": bool,
    "delay": bool,
    "reorder": bool,
    "corrupt_adjacent_only": bool,
    "max_schedules": int,
}

FUZZ_OPTIONS_FIELDS = {
    "fuzz_seed": int,
    "max_execs": int,
    "batch": int,
    "max_ops": int,
    "max_delay": int,
    "horizon": int,
    "drop": bool,
    "delay": bool,
    "reorder": bool,
    "omission_budget": int,
    "corrupt_adjacent_only": bool,
    "corpus_dir": str,
}

SCHEDULES_FIELDS = {
    "explored": int,
    "pruned": int,
    "violations": int,
    "depth_reached": int,
    "truncated": bool,
}

FUZZ_FIELDS = {
    "execs": int,
    "corpus_size": int,
    "corpus_loaded": int,
    "corpus_saved": int,
    "coverage": int,
    "interesting": int,
    "violations": int,
}

COUNTEREXAMPLE_FIELDS = {
    "trace": str,
    "ops": int,
    "shrink_runs": int,
    "views": list,
}


def check_fields(obj, fields, where, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected an object")
        return
    for key, types in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
            continue
        value = obj[key]
        if types is int and isinstance(value, bool):
            errors.append(f"{where}: field '{key}' must be an integer, got bool")
        elif types is bool and not isinstance(value, bool):
            errors.append(f"{where}: field '{key}' must be a bool")
        elif not isinstance(value, types):
            errors.append(f"{where}: field '{key}' has wrong type {type(value).__name__}")
    for key in obj:
        if key not in fields:
            errors.append(f"{where}: unknown field '{key}'")


def detect_schema(doc):
    if isinstance(doc, dict) and "fuzz" in doc:
        return "fuzz"
    return "explore"


def counters_block(doc, schema):
    """The per-schema counters object ('schedules' or 'fuzz')."""
    block = doc.get("fuzz" if schema == "fuzz" else "schedules", {})
    return block if isinstance(block, dict) else {}


def validate(doc, schema):
    errors = []
    if not isinstance(doc, dict):
        return ["top level: expected a JSON object"]

    counters_key = "fuzz" if schema == "fuzz" else "schedules"
    top = ("scenario", "options", counters_key, "all_satisfied", "counterexample")
    for key in top:
        if key not in doc:
            errors.append(f"top level: missing field '{key}'")
    for key in doc:
        if key not in top:
            errors.append(f"top level: unknown field '{key}'")

    check_fields(doc.get("scenario", {}), SCENARIO_FIELDS, "scenario", errors)
    if schema == "fuzz":
        check_fields(doc.get("options", {}), FUZZ_OPTIONS_FIELDS, "options", errors)
        check_fields(doc.get("fuzz", {}), FUZZ_FIELDS, "fuzz", errors)
    else:
        check_fields(doc.get("options", {}), EXPLORE_OPTIONS_FIELDS, "options", errors)
        check_fields(doc.get("schedules", {}), SCHEDULES_FIELDS, "schedules", errors)

    if not isinstance(doc.get("all_satisfied"), bool):
        errors.append("top level: all_satisfied must be a bool")

    counters = counters_block(doc, schema)
    ran = counters.get("execs" if schema == "fuzz" else "explored")
    if isinstance(ran, int) and ran < 1:
        errors.append(f"{counters_key}: the unperturbed schedule always runs, "
                      "so the run counter must be >= 1")
    violations = counters.get("violations")
    if isinstance(violations, int) and isinstance(doc.get("all_satisfied"), bool):
        if doc["all_satisfied"] != (violations == 0):
            errors.append("top level: all_satisfied must equal (violations == 0)")
    if schema == "fuzz":
        size = counters.get("corpus_size")
        coverage = counters.get("coverage")
        if isinstance(size, int) and isinstance(coverage, int) and 0 < coverage < size:
            errors.append("fuzz: every corpus entry holds at least one coverage "
                          "point, so coverage must be >= corpus_size")

    counterexample = doc.get("counterexample")
    if counterexample is not None:
        check_fields(counterexample, COUNTEREXAMPLE_FIELDS, "counterexample", errors)
        if isinstance(counterexample, dict):
            views = counterexample.get("views", [])
            if isinstance(views, list) and not all(
                    isinstance(v, int) and not isinstance(v, bool) for v in views):
                errors.append("counterexample: views must contain only integers")
            trace = counterexample.get("trace")
            ops = counterexample.get("ops")
            if isinstance(trace, str) and isinstance(ops, int):
                op_count = 0 if trace == "" else trace.count(";") + 1
                if op_count != ops:
                    errors.append(f"counterexample: ops {ops} != trace op count {op_count}")
    if isinstance(doc.get("all_satisfied"), bool) and doc["all_satisfied"] \
            and counterexample is not None:
        errors.append("top level: a satisfied search must not carry a counterexample")
    return errors


def main(argv):
    require_clean = False
    min_execs = None
    schema = "auto"
    args = []
    it = iter(argv[1:])
    for a in it:
        if a == "--require-no-violations":
            require_clean = True
        elif a == "--min-execs":
            value = next(it, None)
            if value is None or not value.isdigit():
                print("--min-execs needs an integer value", file=sys.stderr)
                return 2
            min_execs = int(value)
        elif a == "--schema":
            value = next(it, None)
            if value not in ("explore", "fuzz", "auto"):
                print("--schema must be explore, fuzz, or auto", file=sys.stderr)
                return 2
            schema = value
        elif a.startswith("--"):
            print(f"unknown flag: {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {args[0]}: {e}", file=sys.stderr)
        return 1

    if schema == "auto":
        schema = detect_schema(doc)

    errors = validate(doc, schema)
    counters = counters_block(doc, schema)
    if require_clean and counters.get("violations") != 0:
        errors.append("run verdict: violations != 0 (--require-no-violations)")
    if min_execs is not None:
        ran = counters.get("execs" if schema == "fuzz" else "explored")
        if not isinstance(ran, int) or ran < min_execs:
            errors.append(f"run verdict: ran {ran} schedule(s), "
                          f"need >= {min_execs} (--min-execs)")

    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    if errors:
        return 1
    if schema == "fuzz":
        print(f"OK: {args[0]} [fuzz]: {counters.get('execs')} exec(s), "
              f"corpus {counters.get('corpus_size')}, coverage {counters.get('coverage')}, "
              f"{counters.get('violations')} violation(s), "
              f"all_satisfied={doc.get('all_satisfied')}")
    else:
        print(f"OK: {args[0]} [explore]: {counters.get('explored')} schedule(s) explored, "
              f"{counters.get('pruned')} pruned, {counters.get('violations')} violation(s), "
              f"all_satisfied={doc.get('all_satisfied')}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
