#!/usr/bin/env python3
"""Validate a `bsm_cli explore` or `bsm_cli fuzz` JSON document.

Compatibility shim: the validator now lives in validate_json.py, which
handles every report schema behind the shared v2 envelope. This entry
point forwards unchanged — its --schema explore|fuzz|auto values are a
subset of the unified validator's.

Usage: validate_sched_json.py PATH [--schema explore|fuzz|auto]
                                   [--require-no-violations] [--min-execs N]
"""
import sys

import validate_json


def main(argv):
    return validate_json.main(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
